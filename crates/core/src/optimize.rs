//! The optimization phase (paper §4): choose the new per-node allocation by
//! linear programming.
//!
//! Primary program (the paper's):
//!
//! ```text
//! minimize    Σᵢ ā₀ᵢ xᵢ  (+ ε·Σᵢ xᵢ tie-break)
//! subject to  Σᵢ āₖᵢ xᵢ = RTᵏ_goal − c̄ₖ
//!             0 ≤ xᵢ ≤ availᵢ
//! ```
//!
//! where `availᵢ = SIZEᵢ − Σ_{l≠k} LM_{l,i}` (Eq. 6). When the equality is
//! unattainable inside the box — the goal is tighter than the fully-dedicated
//! prediction, or looser than the zero-dedication prediction — the paper's
//! feedback loop still needs *some* new partitioning that "at least reduces
//! the difference between its mean response time and its goal". We solve the
//! standard goal-programming relaxation: minimize the violation `|ā·x − rhs|`
//! via a slack pair, breaking ties toward the primary objective.
//!
//! The ε tie-break keeps the solution unique when the no-goal gradient is
//! flat (all-zero after clamping), preferring the least dedicated memory.
//!
//! The LP is metric-agnostic: `RTᵏ` is whatever statistic the coordinator
//! measured and fit the planes through. For a mean goal that is the
//! λ-weighted interval mean; for a quantile goal it is the merged-histogram
//! goal quantile (e.g. p95), so [`Partitioning::predicted_class_ms`]
//! predicts the *quantile* at the new allocation. Fitting a hyperplane
//! through observed quantiles is sound for the same reason it is for means:
//! more dedicated memory monotonically improves the response-time
//! distribution, so the quantile is monotone in each node's allocation and
//! locally well-approximated by the plane the measure points span.

use dmm_lp::{LpError, Problem, Relation};

use crate::approx::Planes;

/// What the LP minimizes (the paper's choice plus the §8 "other objective
/// functions" extensions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// Minimize the predicted no-goal response time (the paper's §4 choice).
    #[default]
    MinNoGoalRt,
    /// Minimize total dedicated memory (ignore the no-goal plane).
    MinTotalDedicated,
    /// Spread the dedication evenly: minimize the largest per-node
    /// allocation (motivated by §8's per-node variation goals).
    BalanceNodes,
}

/// One §4 partitioning problem.
#[derive(Debug, Clone)]
pub struct PartitionProblem<'a> {
    /// Fitted response-time planes.
    pub planes: &'a Planes,
    /// The class's response time goal in ms.
    pub goal_ms: f64,
    /// Per-node available memory for this class in MB
    /// (`SIZEᵢ − Σ_{l≠k} LM_{l,i}`).
    pub avail_mb: &'a [f64],
    /// The allocation currently in force (MB per node).
    pub current_mb: &'a [f64],
    /// Penalty in ms/MB on `|x − current|`: breaks the ties a symmetric
    /// cluster otherwise resolves by hopping between equivalent vertices,
    /// each hop invalidating a pool's worth of warm cache. Keep well below
    /// the real response-time gradients (~1–10 ms/MB) so it never overrides
    /// a genuine preference.
    pub reallocation_penalty: f64,
    /// Objective variant.
    pub objective: Objective,
}

/// Result of the optimization phase.
#[derive(Debug, Clone, PartialEq)]
pub struct Partitioning {
    /// New dedicated buffer per node, MB.
    pub alloc_mb: Vec<f64>,
    /// Predicted goal-class response time at this allocation.
    pub predicted_class_ms: f64,
    /// Predicted no-goal response time at this allocation.
    pub predicted_nogoal_ms: f64,
    /// True if the goal equality was attainable (false ⇒ relaxed solution).
    pub goal_attainable: bool,
}

/// Tie-break weight on Σx, small against the ms-per-MB gradients (~0.1–100).
const EPS_TIEBREAK: f64 = 1e-6;

/// Solves the §4 program, falling back to the goal relaxation when the
/// equality constraint is infeasible within the capacity box.
pub fn solve_partitioning(p: &PartitionProblem<'_>) -> Result<Partitioning, LpError> {
    let n = p.avail_mb.len();
    assert_eq!(p.planes.class.dim(), n, "plane/node count mismatch");
    assert!(p.avail_mb.iter().all(|&a| a >= 0.0));
    let rhs = p.goal_ms - p.planes.class.c;

    match solve_exact(p, rhs, n) {
        Ok(x) => Ok(finish(p, x, true)),
        Err(LpError::Infeasible) => {
            let x = solve_relaxed(p, rhs, n)?;
            Ok(finish(p, x, false))
        }
        Err(e) => Err(e),
    }
}

fn objective_coeff(p: &PartitionProblem<'_>, i: usize) -> f64 {
    match p.objective {
        Objective::MinNoGoalRt => p.planes.nogoal.w[i] + EPS_TIEBREAK,
        Objective::MinTotalDedicated => 1.0,
        Objective::BalanceNodes => EPS_TIEBREAK, // handled via the max var
    }
}

/// Appends per-node deviation variables `dᵢ ≥ |xᵢ − currentᵢ|` with cost
/// `reallocation_penalty`, starting at column `base`.
fn add_stickiness(lp: &mut Problem, p: &PartitionProblem<'_>, base: usize) {
    if p.reallocation_penalty <= 0.0 {
        return;
    }
    for i in 0..p.current_mb.len() {
        lp.set_objective(base + i, p.reallocation_penalty);
        // dᵢ ≥ xᵢ − curᵢ  and  dᵢ ≥ curᵢ − xᵢ.
        lp.constraint(&[(i, 1.0), (base + i, -1.0)], Relation::Le, p.current_mb[i]);
        lp.constraint(
            &[(i, -1.0), (base + i, -1.0)],
            Relation::Le,
            -p.current_mb[i],
        );
    }
}

fn num_stickiness_vars(p: &PartitionProblem<'_>) -> usize {
    if p.reallocation_penalty > 0.0 {
        p.current_mb.len()
    } else {
        0
    }
}

fn solve_exact(p: &PartitionProblem<'_>, rhs: f64, n: usize) -> Result<Vec<f64>, LpError> {
    let extra = usize::from(p.objective == Objective::BalanceNodes);
    let sticky = num_stickiness_vars(p);
    let mut lp = Problem::minimize(n + extra + sticky);
    for i in 0..n {
        lp.set_objective(i, objective_coeff(p, i));
        lp.set_bounds(i, 0.0, p.avail_mb[i]);
    }
    if extra == 1 {
        // t ≥ xᵢ for all i; minimize t.
        lp.set_objective(n, 1.0);
        for i in 0..n {
            lp.constraint(&[(i, 1.0), (n, -1.0)], Relation::Le, 0.0);
        }
    }
    add_stickiness(&mut lp, p, n + extra);
    let terms: Vec<(usize, f64)> = p.planes.class.w.iter().copied().enumerate().collect();
    lp.constraint(&terms, Relation::Eq, rhs);
    let sol = lp.solve()?;
    Ok(sol.x[..n].to_vec())
}

fn solve_relaxed(p: &PartitionProblem<'_>, rhs: f64, n: usize) -> Result<Vec<f64>, LpError> {
    // Variables: x₀..x_{n−1}, u (over-shoot), v (under-shoot):
    //   ā·x + u − v = rhs, minimize big·(u + v) + primary objective.
    let big = 1e3;
    let sticky = num_stickiness_vars(p);
    let mut lp = Problem::minimize(n + 2 + sticky);
    for i in 0..n {
        lp.set_objective(i, objective_coeff(p, i).min(big / 10.0));
        lp.set_bounds(i, 0.0, p.avail_mb[i]);
    }
    lp.set_objective(n, big);
    lp.set_objective(n + 1, big);
    add_stickiness(&mut lp, p, n + 2);
    let mut terms: Vec<(usize, f64)> = p.planes.class.w.iter().copied().enumerate().collect();
    terms.push((n, 1.0));
    terms.push((n + 1, -1.0));
    lp.constraint(&terms, Relation::Eq, rhs);
    let sol = lp.solve()?;
    Ok(sol.x[..n].to_vec())
}

fn finish(p: &PartitionProblem<'_>, x: Vec<f64>, attainable: bool) -> Partitioning {
    let predicted_class_ms = p.planes.predict_class_ms(&x);
    let predicted_nogoal_ms = p.planes.predict_nogoal_ms(&x);
    Partitioning {
        alloc_mb: x,
        predicted_class_ms,
        predicted_nogoal_ms,
        goal_attainable: attainable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::Planes;
    use dmm_linalg::Hyperplane;

    fn planes(w_k: Vec<f64>, c_k: f64, w_0: Vec<f64>, c_0: f64) -> Planes {
        Planes {
            class: Hyperplane { w: w_k, c: c_k },
            nogoal: Hyperplane { w: w_0, c: c_0 },
        }
    }

    #[test]
    fn meets_goal_minimizing_nogoal_damage() {
        // RT_k = 20 − 2x₁ − 2x₂ (both nodes equally effective);
        // RT_0 = 3 + 5x₁ + 1x₂ (node 1 hurts the no-goal class more).
        let pl = planes(vec![-2.0, -2.0], 20.0, vec![5.0, 1.0], 3.0);
        let avail = [2.0, 2.0];
        let sol = solve_partitioning(&PartitionProblem {
            planes: &pl,
            goal_ms: 16.0,
            avail_mb: &avail,
            current_mb: &vec![0.0; avail.len()],
            reallocation_penalty: 0.0,
            objective: Objective::MinNoGoalRt,
        })
        .expect("feasible");
        assert!(sol.goal_attainable);
        // Needs Σ2x = 4 → 2 MB total, all on node 2 (cheaper for no-goal).
        assert!((sol.alloc_mb[0] - 0.0).abs() < 1e-6);
        assert!((sol.alloc_mb[1] - 2.0).abs() < 1e-6);
        assert!((sol.predicted_class_ms - 16.0).abs() < 1e-6);
    }

    #[test]
    fn unattainably_tight_goal_saturates_memory() {
        // Even full dedication predicts 12 ms; goal 5 ms.
        let pl = planes(vec![-2.0, -2.0], 20.0, vec![1.0, 1.0], 3.0);
        let avail = [2.0, 2.0];
        let sol = solve_partitioning(&PartitionProblem {
            planes: &pl,
            goal_ms: 5.0,
            avail_mb: &avail,
            current_mb: &vec![0.0; avail.len()],
            reallocation_penalty: 0.0,
            objective: Objective::MinNoGoalRt,
        })
        .expect("relaxation solves");
        assert!(!sol.goal_attainable);
        assert!((sol.alloc_mb[0] - 2.0).abs() < 1e-6);
        assert!((sol.alloc_mb[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn overly_loose_goal_releases_memory() {
        // Zero dedication predicts 8 ms; goal 15 ms cannot be "reached" from
        // below, so the relaxation gives back everything.
        let pl = planes(vec![-2.0, -2.0], 8.0, vec![1.0, 1.0], 3.0);
        let avail = [2.0, 2.0];
        let sol = solve_partitioning(&PartitionProblem {
            planes: &pl,
            goal_ms: 15.0,
            avail_mb: &avail,
            current_mb: &vec![0.0; avail.len()],
            reallocation_penalty: 0.0,
            objective: Objective::MinNoGoalRt,
        })
        .expect("relaxation solves");
        assert!(!sol.goal_attainable);
        assert!(sol.alloc_mb.iter().all(|&x| x < 1e-6));
    }

    #[test]
    fn respects_per_node_availability() {
        let pl = planes(vec![-4.0, -4.0], 20.0, vec![1.0, 1.0], 3.0);
        // Node 1 almost full with other classes.
        let avail = [0.25, 2.0];
        let sol = solve_partitioning(&PartitionProblem {
            planes: &pl,
            goal_ms: 12.0, // needs Σ4x = 8 → 2 MB total
            avail_mb: &avail,
            current_mb: &vec![0.0; avail.len()],
            reallocation_penalty: 0.0,
            objective: Objective::MinNoGoalRt,
        })
        .expect("feasible");
        assert!(sol.alloc_mb[0] <= 0.25 + 1e-9);
        let total: f64 = sol.alloc_mb.iter().sum();
        assert!((total - 2.0).abs() < 1e-6);
    }

    #[test]
    fn flat_nogoal_plane_prefers_less_memory() {
        // No-goal gradient all clamped to zero: the ε tie-break must pick
        // the cheapest allocation satisfying the equality.
        let pl = planes(vec![-1.0, -4.0], 20.0, vec![0.0, 0.0], 3.0);
        let avail = [2.0, 2.0];
        let sol = solve_partitioning(&PartitionProblem {
            planes: &pl,
            goal_ms: 16.0, // x₁ + 4x₂ = 4
            avail_mb: &avail,
            current_mb: &vec![0.0; avail.len()],
            reallocation_penalty: 0.0,
            objective: Objective::MinNoGoalRt,
        })
        .expect("feasible");
        // 1 MB on node 2 beats 4 MB worth on node 1 (which exceeds avail
        // anyway).
        assert!((sol.alloc_mb[1] - 1.0).abs() < 1e-6);
        assert!(sol.alloc_mb[0] < 1e-6);
    }

    #[test]
    fn balance_objective_spreads_allocation() {
        let pl = planes(vec![-2.0, -2.0, -2.0], 20.0, vec![1.0, 1.0, 1.0], 3.0);
        let avail = [2.0, 2.0, 2.0];
        let sol = solve_partitioning(&PartitionProblem {
            planes: &pl,
            goal_ms: 14.0, // Σ2x = 6 → 3 MB total
            avail_mb: &avail,
            current_mb: &vec![0.0; avail.len()],
            reallocation_penalty: 0.0,
            objective: Objective::BalanceNodes,
        })
        .expect("feasible");
        // Minimizing the max allocation under a symmetric constraint gives
        // the even split.
        for x in &sol.alloc_mb {
            assert!((x - 1.0).abs() < 1e-5, "{:?}", sol.alloc_mb);
        }
    }

    #[test]
    fn min_total_dedicated_objective() {
        let pl = planes(vec![-1.0, -2.0], 20.0, vec![9.0, 1.0], 3.0);
        let avail = [4.0, 4.0];
        let sol = solve_partitioning(&PartitionProblem {
            planes: &pl,
            goal_ms: 16.0, // x₁ + 2x₂ = 4
            avail_mb: &avail,
            current_mb: &vec![0.0; avail.len()],
            reallocation_penalty: 0.0,
            objective: Objective::MinTotalDedicated,
        })
        .expect("feasible");
        // Cheapest total memory: 2 MB on node 2 (its slope is steeper).
        assert!((sol.alloc_mb[1] - 2.0).abs() < 1e-6);
        assert!(sol.alloc_mb[0] < 1e-6);
    }

    #[test]
    fn positive_class_gradient_noise_still_terminates() {
        // Noisy fit claims more memory *hurts* the class; the equality is
        // then infeasible for a tighter goal and the relaxation must still
        // return something sensible (here: x = 0 minimizes the violation).
        let pl = planes(vec![0.5, 0.3], 10.0, vec![1.0, 1.0], 3.0);
        let avail = [2.0, 2.0];
        let sol = solve_partitioning(&PartitionProblem {
            planes: &pl,
            goal_ms: 8.0,
            avail_mb: &avail,
            current_mb: &vec![0.0; avail.len()],
            reallocation_penalty: 0.0,
            objective: Objective::MinNoGoalRt,
        })
        .expect("relaxation solves");
        assert!(!sol.goal_attainable);
        assert!(sol.alloc_mb.iter().all(|&x| x < 1e-6));
    }
}
