//! Baseline controllers for the ablation experiments (paper §2's related
//! work, reimplemented under the same agent/coordinator plumbing).
//!
//! * **Fragment fencing** (Brown et al., VLDB'93 \[5\]): "assumes a direct
//!   proportionality between the buffer space and the response time" — the
//!   next buffer size solves a linear response-time-vs-buffer model fitted
//!   through the last two observations.
//! * **Class fencing** (Brown et al., SIGMOD'96 \[6\]): "only assumes a
//!   proportionality between the miss rate and the response time. The
//!   necessary dependency between the miss rate and the buffer space is
//!   derived by a linear extrapolation of previously measured values" —
//!   strict RT ∝ miss proportionality chained with a measured linear
//!   miss(buffer) extrapolation.
//! * **Static** / **None**: fixed partitioning at start-up resp. a single
//!   shared pool, both expressed as [`crate::coordinator::Strategy::Fixed`].
//!
//! Both fencing baselines were designed for a single server; the paper's §2
//! observes exactly this limitation. The N-node generalization here splits
//! the computed aggregate buffer equally across nodes — the natural naive
//! lift, and the thing the paper's per-node LP improves on.

use crate::optimize::Objective;

/// Which controller a simulation runs (per goal class).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ControllerKind {
    /// The paper's hyperplane + LP method.
    Hyperplane {
        /// LP objective.
        objective: Objective,
    },
    /// Fragment fencing \[5\], equal-split across nodes.
    FragmentFencing,
    /// Class fencing \[6\], equal-split across nodes.
    ClassFencing,
    /// A fixed fraction of every node's buffer dedicated at start-up.
    Static {
        /// Fraction of each node's buffer dedicated to each goal class.
        fraction: f64,
    },
    /// No dedicated pools at all: one shared pool per node.
    None,
}

impl Default for ControllerKind {
    fn default() -> Self {
        ControllerKind::Hyperplane {
            objective: Objective::MinNoGoalRt,
        }
    }
}

/// Shared helper: equal split of an aggregate MB target across nodes,
/// clamped to per-node availability (overflow spills to nodes with room).
fn equal_split(total_mb: f64, avail: &[f64]) -> Vec<f64> {
    let n = avail.len();
    let mut alloc = vec![0.0; n];
    let mut remaining = total_mb.max(0.0);
    let mut open: Vec<usize> = (0..n).collect();
    // Waterfill: distribute evenly, clamping full nodes and re-spreading.
    while remaining > 1e-9 && !open.is_empty() {
        let share = remaining / open.len() as f64;
        let mut still_open = Vec::with_capacity(open.len());
        for &i in &open {
            let room = avail[i] - alloc[i];
            let take = share.min(room);
            alloc[i] += take;
            remaining -= take;
            if alloc[i] < avail[i] - 1e-12 {
                still_open.push(i);
            }
        }
        if still_open.len() == open.len() {
            break; // nobody clamped: distribution complete
        }
        open = still_open;
    }
    alloc
}

/// Two-point linear model through the most recent distinct observations.
#[derive(Debug, Clone, Default)]
struct TwoPoint {
    points: Vec<(f64, f64)>, // (x, y), at most 2, newest last
}

impl TwoPoint {
    fn push(&mut self, x: f64, y: f64) {
        if let Some(last) = self.points.last_mut() {
            if (last.0 - x).abs() < 1e-9 {
                last.1 = 0.5 * (last.1 + y); // same x: refresh y
                return;
            }
        }
        self.points.push((x, y));
        if self.points.len() > 2 {
            self.points.remove(0);
        }
    }

    /// Slope dy/dx if two distinct points exist.
    fn slope(&self) -> Option<f64> {
        match self.points.as_slice() {
            [(x1, y1), (x2, y2)] => Some((y2 - y1) / (x2 - x1)),
            _ => None,
        }
    }
}

/// Fragment fencing state: linear RT(buffer) model.
#[derive(Debug, Default)]
pub struct FragmentFencingState {
    model: TwoPoint,
}

impl FragmentFencingState {
    /// Fresh state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes a new per-node allocation or `None` to keep the current one.
    pub fn suggest(
        &mut self,
        goal_ms: f64,
        rt_ms: f64,
        granted_mb: &[f64],
        avail_mb: &[f64],
        node_size_mb: f64,
    ) -> Option<Vec<f64>> {
        let total: f64 = granted_mb.iter().sum();
        self.model.push(total, rt_ms);
        // RT assumed linear (decreasing) in buffer. Without a usable slope,
        // assume the goal-to-observed ratio scales the buffer directly
        // (the "direct proportionality" of [5]).
        let slope = match self.model.slope() {
            Some(s) if s < -1e-9 => s,
            _ => -rt_ms / (total.max(0.25 * node_size_mb)),
        };
        let needed = total + (goal_ms - rt_ms) / slope;
        let needed = bounded_step(total, needed, avail_mb, node_size_mb);
        Some(equal_split(needed, avail_mb))
    }
}

/// Class fencing state: proportional RT(miss) plus a linear miss(buffer)
/// extrapolation.
#[derive(Debug, Default)]
pub struct ClassFencingState {
    miss_of_buf: TwoPoint,
}

impl ClassFencingState {
    /// Fresh state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes a new per-node allocation or `None` when no miss-rate data
    /// exists (the class had no pool traffic this interval).
    pub fn suggest(
        &mut self,
        goal_ms: f64,
        rt_ms: f64,
        miss_rate: Option<f64>,
        granted_mb: &[f64],
        avail_mb: &[f64],
        node_size_mb: f64,
    ) -> Option<Vec<f64>> {
        let miss = miss_rate?;
        let total: f64 = granted_mb.iter().sum();
        self.miss_of_buf.push(total, miss);

        // §2: class fencing "only assumes a proportionality between the miss
        // rate and the response time" — RT = α·miss with α taken from the
        // current observation. (An affine two-point RT(miss) model would
        // collapse into fragment fencing: chaining two linear interpolants
        // through the same two observations reproduces the direct one.)
        let alpha = rt_ms / miss.max(1e-3);
        let target_miss = (goal_ms / alpha).clamp(0.0, 1.0);

        // miss(buffer) linear; default: doubling the buffer removes all
        // misses (optimistic first guess, corrected by feedback).
        let miss_slope = match self.miss_of_buf.slope() {
            Some(s) if s < -1e-9 => s,
            _ => -miss / total.max(0.25 * node_size_mb),
        };
        let needed = total + (target_miss - miss) / miss_slope;
        let needed = bounded_step(total, needed, avail_mb, node_size_mb);
        Some(equal_split(needed, avail_mb))
    }
}

/// Both fencing papers bound how far a single extrapolation may move the
/// allocation (class fencing via the concave hit-rate envelope, fragment
/// fencing by re-estimating every interval): per step, at most double (plus
/// one minimal pool) and at least halve.
fn bounded_step(total: f64, needed: f64, avail_mb: &[f64], node_size_mb: f64) -> f64 {
    let max_total: f64 = avail_mb.iter().sum();
    let hi = (2.0 * total + 0.25 * node_size_mb).min(max_total);
    let lo = 0.5 * total;
    needed.clamp(0.0, max_total).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_split_waterfills() {
        let alloc = equal_split(3.0, &[2.0, 2.0, 2.0]);
        for a in &alloc {
            assert!((a - 1.0).abs() < 1e-9);
        }
        // Clamped node spills to the others.
        let alloc = equal_split(3.0, &[0.5, 2.0, 2.0]);
        assert!((alloc[0] - 0.5).abs() < 1e-9);
        assert!((alloc[1] - 1.25).abs() < 1e-9);
        assert!((alloc[2] - 1.25).abs() < 1e-9);
        // Demand beyond capacity saturates.
        let alloc = equal_split(100.0, &[1.0, 1.0]);
        assert!((alloc.iter().sum::<f64>() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fragment_fencing_grows_buffer_when_slow() {
        let mut s = FragmentFencingState::new();
        let avail = [2.0, 2.0, 2.0];
        let granted = [0.5, 0.5, 0.5];
        // RT 10 vs goal 5: proportionality heuristic doubles the buffer.
        let alloc = s
            .suggest(5.0, 10.0, &granted, &avail, 2.0)
            .expect("suggests");
        let total: f64 = alloc.iter().sum();
        assert!(total > 1.5, "should grow: {total}");
    }

    #[test]
    fn fragment_fencing_uses_measured_slope() {
        let mut s = FragmentFencingState::new();
        let avail = [4.0, 4.0];
        // First observation at 1 MB → heuristic.
        s.suggest(5.0, 10.0, &[0.5, 0.5], &avail, 2.0);
        // Second at 2 MB with RT 8: slope = −2 ms/MB; to reach 5 needs
        // 2 + 3/2 = 3.5 MB.
        let alloc = s
            .suggest(5.0, 8.0, &[1.0, 1.0], &avail, 2.0)
            .expect("suggests");
        let total: f64 = alloc.iter().sum();
        assert!((total - 3.5).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn fragment_fencing_shrinks_when_fast() {
        let mut s = FragmentFencingState::new();
        let avail = [2.0, 2.0];
        s.suggest(5.0, 10.0, &[0.5, 0.5], &avail, 2.0);
        // Now too fast: RT 2 vs goal 5 at 2 MB → slope (2−10)/(2−1) = −8;
        // needed = 2 + 3/−8 < 2.
        let alloc = s
            .suggest(5.0, 2.0, &[1.0, 1.0], &avail, 2.0)
            .expect("suggests");
        let total: f64 = alloc.iter().sum();
        assert!(total < 2.0, "should shrink: {total}");
    }

    #[test]
    fn class_fencing_needs_miss_data() {
        let mut s = ClassFencingState::new();
        assert!(s.suggest(5.0, 10.0, None, &[0.5], &[2.0], 2.0).is_none());
    }

    #[test]
    fn class_fencing_converges_on_linear_system() {
        // Ground truth: miss(B) = 0.8 − 0.2·B, RT = 20·miss.
        let miss_of = |b: f64| (0.8 - 0.2 * b).clamp(0.0, 1.0);
        let rt_of = |b: f64| 20.0 * miss_of(b);
        let goal = 6.0; // ⇒ miss* = 0.3 ⇒ B* = 2.5
        let mut s = ClassFencingState::new();
        let avail = [4.0, 4.0];
        let mut b = 1.0;
        for _ in 0..6 {
            let alloc = s
                .suggest(
                    goal,
                    rt_of(b),
                    Some(miss_of(b)),
                    &[b / 2.0, b / 2.0],
                    &avail,
                    4.0,
                )
                .expect("suggests");
            b = alloc.iter().sum();
        }
        assert!((b - 2.5).abs() < 0.1, "converged to {b}");
    }

    #[test]
    fn controller_kind_default_is_the_paper() {
        assert_eq!(
            ControllerKind::default(),
            ControllerKind::Hyperplane {
                objective: Objective::MinNoGoalRt
            }
        );
    }
}
