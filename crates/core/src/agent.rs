//! Local agents (paper §5, phase (a)).
//!
//! One agent runs per (node, class): it computes the inter-arrival rate and
//! the mean response time of its class's operations over each observation
//! interval, and reports to the class coordinator when something significant
//! changed — a response-time shift beyond the significance threshold, an
//! allocation change, or fresh arrival-rate information. No-goal agents'
//! reports are fanned out to *every* goal coordinator, since every
//! optimization needs the no-goal response time for its objective.

use dmm_buffer::{ClassId, PoolStats};
use dmm_cluster::NodeId;
use dmm_obs::Histogram;
use dmm_sim::stats::WindowMean;
use dmm_sim::SimTime;

/// Bucket layout shared by every per-interval response-time histogram:
/// log-linear edges from 10 µs to 10 s with 8 subdivisions per octave
/// (≈ 12 % worst-case relative bucket width). Agents of a quantile-goal
/// class all use this layout, so the coordinator can merge their
/// histograms bit-exactly in node order.
pub fn rt_histogram() -> Histogram {
    Histogram::log_linear(10_000, 10_000_000_000, 8)
}

/// One interval's summary from a local agent.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentObservation {
    /// Reporting node.
    pub node: NodeId,
    /// Reporting class.
    pub class: ClassId,
    /// Mean response time over the interval (ms); `None` if no operation
    /// completed.
    pub mean_rt_ms: Option<f64>,
    /// Integer-exact response-time histogram (ns) over the interval;
    /// collected only for quantile-goal classes (see
    /// [`LocalAgent::enable_rt_histograms`]), `None` otherwise.
    pub rt_hist: Option<Histogram>,
    /// Operations completed in the interval.
    pub completions: u64,
    /// Observed arrival rate λ_{k,i} in ops/ms.
    pub arrival_rate_per_ms: f64,
    /// Page accesses against this class's pool during the interval.
    pub pool_accesses: u64,
    /// Hits among those accesses.
    pub pool_hits: u64,
    /// Granted dedicated frames at interval end.
    pub granted_pages: usize,
    /// Frames still available to this class on the node
    /// (`SIZEᵢ − Σ_{l≠k} LM_{l,i}`).
    pub avail_pages: usize,
}

impl AgentObservation {
    /// Pool hit rate, if any accesses occurred.
    pub fn hit_rate(&self) -> Option<f64> {
        if self.pool_accesses == 0 {
            None
        } else {
            Some(self.pool_hits as f64 / self.pool_accesses as f64)
        }
    }
}

/// The per-(node, class) measurement agent.
#[derive(Debug)]
pub struct LocalAgent {
    node: NodeId,
    class: ClassId,
    rt_window: WindowMean,
    /// Per-interval response-time histogram (ns); allocated only for
    /// quantile-goal classes, so mean-goal runs pay nothing.
    rt_hist: Option<Histogram>,
    /// Lifetime completion count (never reset; used for makespan-style
    /// throughput accounting across the whole run).
    completions_total: u64,
    arrivals_in_interval: u64,
    last_pool_stats: PoolStats,
    last_reported_rt: Option<f64>,
    last_reported_alloc: usize,
    significance: f64,
}

impl LocalAgent {
    /// Agent with the given significance threshold (fractional response-time
    /// change that triggers a report; the paper reports "a significant
    /// change").
    pub fn new(node: NodeId, class: ClassId, significance: f64) -> Self {
        assert!(significance >= 0.0);
        LocalAgent {
            node,
            class,
            rt_window: WindowMean::new(),
            rt_hist: None,
            completions_total: 0,
            arrivals_in_interval: 0,
            last_pool_stats: PoolStats::default(),
            last_reported_rt: None,
            last_reported_alloc: usize::MAX,
            significance,
        }
    }

    /// Node this agent runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Class this agent observes.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// Re-bases the pool-statistics snapshot (call when the data plane's
    /// cumulative counters are reset at the end of warm-up).
    pub fn reset_pool_baseline(&mut self) {
        self.last_pool_stats = PoolStats::default();
    }

    /// Records the arrival of one class operation at this node.
    pub fn on_arrival(&mut self) {
        self.arrivals_in_interval += 1;
    }

    /// Turns on per-interval response-time histogram collection (the
    /// [`rt_histogram`] layout). Called once at construction time for
    /// agents of quantile-goal classes; mean-goal agents never allocate a
    /// histogram, which keeps the mean-goal path byte-identical to the
    /// quantile-free implementation.
    pub fn enable_rt_histograms(&mut self) {
        self.rt_hist = Some(rt_histogram());
    }

    /// Whether this agent collects response-time histograms.
    pub fn collects_rt_histograms(&self) -> bool {
        self.rt_hist.is_some()
    }

    /// Records the completion of one class operation (response time in ms).
    pub fn on_completion(&mut self, rt_ms: f64) {
        self.rt_window.push(rt_ms);
        self.completions_total += 1;
    }

    /// Lifetime number of completions this agent has seen (monotone; not
    /// reset at interval or warm-up boundaries).
    pub fn completions_total(&self) -> u64 {
        self.completions_total
    }

    /// Records the exact response time in nanoseconds into the interval
    /// histogram. No-op unless [`LocalAgent::enable_rt_histograms`] was
    /// called — the mean path is untouched either way.
    pub fn record_rt_ns(&mut self, rt_ns: u64) {
        if let Some(h) = &mut self.rt_hist {
            h.record(rt_ns);
        }
    }

    /// Closes the interval. `pool` is the *cumulative* stats of this class's
    /// pool on this node (the agent keeps the previous snapshot and
    /// differences internally). Returns the observation and whether it is
    /// significant enough to send.
    pub fn end_interval(
        &mut self,
        _now: SimTime,
        interval_ms: f64,
        granted_pages: usize,
        avail_pages: usize,
        pool: PoolStats,
    ) -> (AgentObservation, bool) {
        let (mean_rt_ms, completions) = match self.rt_window.drain() {
            Some((m, n)) => (Some(m), n),
            None => (None, 0),
        };
        // Drain the interval histogram (when collected): the observation
        // carries this interval's distribution and the agent starts fresh.
        let rt_hist = self.rt_hist.as_mut().map(|h| {
            let drained = h.clone();
            h.reset();
            drained
        });
        let arrival_rate = self.arrivals_in_interval as f64 / interval_ms;
        self.arrivals_in_interval = 0;

        let accesses = (pool.hits + pool.misses)
            .saturating_sub(self.last_pool_stats.hits + self.last_pool_stats.misses);
        let hits = pool.hits.saturating_sub(self.last_pool_stats.hits);
        self.last_pool_stats = pool;

        let obs = AgentObservation {
            node: self.node,
            class: self.class,
            mean_rt_ms,
            rt_hist,
            completions,
            arrival_rate_per_ms: arrival_rate,
            pool_accesses: accesses,
            pool_hits: hits,
            granted_pages,
            avail_pages,
        };

        let significant = self.is_significant(&obs);
        if significant {
            if let Some(rt) = obs.mean_rt_ms {
                self.last_reported_rt = Some(rt);
            }
            self.last_reported_alloc = granted_pages;
        }
        (obs, significant)
    }

    fn is_significant(&self, obs: &AgentObservation) -> bool {
        if obs.granted_pages != self.last_reported_alloc {
            return true; // partitioning changed: new measure point needed
        }
        match (obs.mean_rt_ms, self.last_reported_rt) {
            (Some(rt), Some(prev)) => (rt - prev).abs() > self.significance * prev.max(1e-9),
            (Some(_), None) => true, // first data ever
            (None, _) => false,      // nothing new to say
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agent() -> LocalAgent {
        LocalAgent::new(NodeId(0), ClassId(1), 0.05)
    }

    fn stats(hits: u64, misses: u64) -> PoolStats {
        PoolStats {
            hits,
            misses,
            ..PoolStats::default()
        }
    }

    #[test]
    fn first_interval_with_data_is_significant() {
        let mut a = agent();
        a.on_arrival();
        a.on_completion(10.0);
        let (obs, sig) = a.end_interval(SimTime::ZERO, 5000.0, 64, 512, stats(3, 1));
        assert!(sig);
        assert_eq!(obs.mean_rt_ms, Some(10.0));
        assert_eq!(obs.completions, 1);
        assert!((obs.arrival_rate_per_ms - 1.0 / 5000.0).abs() < 1e-12);
        assert_eq!(obs.pool_accesses, 4);
        assert_eq!(obs.hit_rate(), Some(0.75));
    }

    #[test]
    fn small_change_is_not_significant() {
        let mut a = agent();
        a.on_completion(10.0);
        let (_, sig) = a.end_interval(SimTime::ZERO, 5000.0, 64, 512, stats(0, 0));
        assert!(sig);
        a.on_completion(10.2); // 2% change < 5% threshold
        let (_, sig) = a.end_interval(SimTime::ZERO, 5000.0, 64, 512, stats(0, 0));
        assert!(!sig);
        a.on_completion(12.0); // vs last *reported* 10.0: 20%
        let (_, sig) = a.end_interval(SimTime::ZERO, 5000.0, 64, 512, stats(0, 0));
        assert!(sig);
    }

    #[test]
    fn allocation_change_forces_report() {
        let mut a = agent();
        a.on_completion(10.0);
        let (_, sig) = a.end_interval(SimTime::ZERO, 5000.0, 64, 512, stats(0, 0));
        assert!(sig);
        a.on_completion(10.0);
        let (_, sig) = a.end_interval(SimTime::ZERO, 5000.0, 128, 512, stats(0, 0));
        assert!(sig, "new partitioning needs a new measure point");
    }

    #[test]
    fn empty_interval_not_significant() {
        let mut a = agent();
        a.on_completion(10.0);
        a.end_interval(SimTime::ZERO, 5000.0, 64, 512, stats(0, 0));
        let (obs, sig) = a.end_interval(SimTime::ZERO, 5000.0, 64, 512, stats(0, 0));
        assert!(!sig);
        assert_eq!(obs.mean_rt_ms, None);
        assert_eq!(obs.completions, 0);
    }

    #[test]
    fn pool_stats_are_differenced() {
        let mut a = agent();
        a.end_interval(SimTime::ZERO, 5000.0, 0, 512, stats(10, 10));
        let (obs, _) = a.end_interval(SimTime::ZERO, 5000.0, 0, 512, stats(25, 15));
        assert_eq!(obs.pool_hits, 15);
        assert_eq!(obs.pool_accesses, 20);
    }
}
