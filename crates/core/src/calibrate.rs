//! Goal-range calibration (paper §7.3).
//!
//! "We choose the goals randomly from [goal_min, goal_max], where goal_min
//! corresponds to the response time of the goal class when 2/3 · Σ SIZEᵢ of
//! the cache memory is dedicated to it; in turn, goal_max corresponds to the
//! response time achieved by 1/3 · Σ SIZEᵢ of the cache being dedicated."
//!
//! The calibration runs two short simulations with those static fractions
//! and measures the settled mean response time of the class.
//!
//! For a quantile-goal class the same protocol applies to the goal metric:
//! the calibration simulations observe the per-interval goal quantile (the
//! merged-histogram p-th percentile the controller will later judge) and the
//! band brackets *that* statistic, so a p95 goal drawn from the range is
//! reachable by construction just like a mean goal.

use dmm_buffer::ClassId;
use dmm_workload::GoalRange;

use crate::baselines::ControllerKind;
use crate::system::{Simulation, SystemConfig};

/// Measures `[goal_min, goal_max]` for `class` under `config`'s workload.
/// `settle_intervals` are run before `measure_intervals` are averaged.
pub fn calibrate_goal_range(
    config: &SystemConfig,
    class: ClassId,
    settle_intervals: u32,
    measure_intervals: u32,
) -> GoalRange {
    let min_ms = response_at_fraction(
        config,
        class,
        2.0 / 3.0,
        settle_intervals,
        measure_intervals,
    );
    let max_ms = response_at_fraction(
        config,
        class,
        1.0 / 3.0,
        settle_intervals,
        measure_intervals,
    );
    assert!(
        max_ms > min_ms,
        "more dedicated memory must be faster: {min_ms} vs {max_ms}"
    );
    // Guard against a degenerate band when the workload is cache-friendly.
    let max_ms = max_ms.max(min_ms * 1.2);
    GoalRange::new(min_ms, max_ms)
}

fn response_at_fraction(
    config: &SystemConfig,
    class: ClassId,
    fraction: f64,
    settle: u32,
    measure: u32,
) -> f64 {
    let mut cfg = config.clone();
    cfg.controller = ControllerKind::None;
    cfg.goal_range = None;
    let quantile_goal = cfg.workload.classes[class.index()]
        .goal_metric
        .is_quantile();
    let mut sim = Simulation::new(cfg);
    sim.dedicate_fraction(class, fraction)
        .expect("calibration dedicates a valid fraction to a goal class");
    sim.run_intervals(settle + measure);
    // Calibrate the statistic the controller will actually judge: the
    // settled goal quantile for quantile goals, the settled mean otherwise.
    if quantile_goal {
        sim.mean_observed_quantile_ms(class, measure as usize)
            .expect("class produced completions during calibration")
    } else {
        sim.mean_observed_ms(class, measure as usize)
            .expect("class produced completions during calibration")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_memory_means_tighter_goal() {
        let cfg = SystemConfig::builder()
            .seed(11)
            .goal_ms(8.0)
            .db_pages(400)
            .buffer_pages_per_node(96)
            .goal_rate_per_ms(0.008)
            .warmup_intervals(2)
            .build()
            .expect("valid test config");
        let range = calibrate_goal_range(&cfg, ClassId(1), 4, 4);
        assert!(range.min_ms > 0.0);
        assert!(range.max_ms > range.min_ms);
    }

    #[test]
    fn quantile_goal_calibrates_on_the_quantile() {
        let base = SystemConfig::builder()
            .seed(11)
            .goal_ms(8.0)
            .db_pages(400)
            .buffer_pages_per_node(96)
            .goal_rate_per_ms(0.008)
            .warmup_intervals(2);
        let mean_cfg = base.clone().build().expect("valid test config");
        let p_cfg = base.goal_quantile(0.95).build().expect("valid test config");
        let mean_range = calibrate_goal_range(&mean_cfg, ClassId(1), 4, 4);
        let p_range = calibrate_goal_range(&p_cfg, ClassId(1), 4, 4);
        // The p95 band sits above the mean band: tails are slower than
        // centers under the identical workload and allocations.
        assert!(
            p_range.min_ms > mean_range.min_ms,
            "p95 floor {} should exceed mean floor {}",
            p_range.min_ms,
            mean_range.min_ms
        );
    }
}
