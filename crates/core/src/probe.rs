//! Batched orthogonal warm-up probing (the PR 7 scale-wall fix for §5(b)).
//!
//! The paper's warm-up prober perturbs **one node per step**, so a
//! rank-`N+1` measure store takes ~`N` acted-on checks (each shadowed by
//! settling intervals) before the hyperplane fit can engage — at `N = 64`
//! that dominates convergence time. The batched planner instead perturbs a
//! batch of `B` nodes per probe with sign-orthogonal deltas, and guarantees
//! **every** probe extends the store's rank by exactly one: no step is ever
//! skipped for landing in the span of earlier probes.
//!
//! ## Construction
//!
//! Nodes are split into ⌈N/B⌉ contiguous blocks. The planner emits exactly
//! `N` delta rows (unit scale; the coordinator multiplies by its probe
//! step):
//!
//! 1. **Intra-block** — for each full block, rows `1..B` of the Sylvester
//!    Hadamard matrix `H_B` as ±1 sign patterns on that block's nodes.
//!    They are mutually sign-orthogonal and balanced (sum zero), so each
//!    probe moves memory *within* the block while preserving the class's
//!    total allocation. A ragged tail block of size `s < B` falls back to
//!    `s − 1` pairwise transfer rows (still sum-preserving, still
//!    independent, but not an orthogonal family).
//! 2. **Inter-block** — one balanced transfer row per additional block
//!    (+1 on block 0, scaled −1 on block `g`), connecting the block
//!    subspaces. Sum-preserving.
//! 3. **Level** — a single all-ones row. Sum-preserving probes alone can
//!    never reach affine rank `N + 1`: every sum-preserving point lies in
//!    the hyperplane `Σᵢ aᵢ = Σᵢ baseᵢ`, which caps the affine rank at `N`.
//!    The one deliberate total-shift row supplies the missing direction.
//!
//! Together with the anchor (the unperturbed base) the `N` rows span ℝ^N
//! affinely, and because they are linearly independent, recording them in
//! any order grows the store's rank by one per probe: after `k` rounds of
//! `B` probes the rank is `min(B·k, N + 1)` points — the bound the
//! property suite pins.

/// How the hyperplane strategy probes during warm-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProbeSpec {
    /// The paper's one-perturbed-node-per-step sequence (§5(b)).
    #[default]
    Sequential,
    /// Sign-orthogonal batch perturbations of `batch` nodes per probe.
    Batched {
        /// Nodes perturbed per probe; a power of two ≥ 2 (Sylvester
        /// Hadamard sizes).
        batch: usize,
    },
}

impl ProbeSpec {
    /// True when the batch size is usable (power-of-two ≥ 2 for `Batched`).
    pub fn is_valid(&self) -> bool {
        match *self {
            ProbeSpec::Sequential => true,
            ProbeSpec::Batched { batch } => batch >= 2 && batch.is_power_of_two(),
        }
    }
}

/// The full unit-scale probe stream for `nodes` nodes at batch size
/// `batch`: exactly `nodes` delta rows, linearly independent, every row
/// except the final level row summing to zero. See the module docs for the
/// three-phase construction.
pub fn batched_probe_deltas(nodes: usize, batch: usize) -> Vec<Vec<f64>> {
    assert!(nodes > 0);
    assert!(
        batch >= 2 && batch.is_power_of_two(),
        "batch must be a power of two ≥ 2"
    );
    let blocks: Vec<(usize, usize)> = (0..nodes)
        .step_by(batch)
        .map(|start| (start, batch.min(nodes - start)))
        .collect();
    let mut rows = Vec::with_capacity(nodes);
    // Phase 1: intra-block sign patterns.
    for &(start, size) in &blocks {
        if size == batch {
            // Sylvester Hadamard rows 1..B: H[j][i] = (−1)^popcount(j & i).
            for j in 1..size {
                let mut row = vec![0.0; nodes];
                for i in 0..size {
                    row[start + i] = if (j & i).count_ones() % 2 == 0 {
                        1.0
                    } else {
                        -1.0
                    };
                }
                rows.push(row);
            }
        } else {
            // Ragged tail: pairwise transfers off the block's first node.
            for j in 1..size {
                let mut row = vec![0.0; nodes];
                row[start] = 1.0;
                row[start + j] = -1.0;
                rows.push(row);
            }
        }
    }
    // Phase 2: balanced inter-block transfers.
    let (b0_start, b0_size) = blocks[0];
    for &(start, size) in &blocks[1..] {
        let mut row = vec![0.0; nodes];
        for i in 0..b0_size {
            row[b0_start + i] = 1.0;
        }
        let neg = b0_size as f64 / size as f64;
        for i in 0..size {
            row[start + i] = -neg;
        }
        rows.push(row);
    }
    // Phase 3: the single sum-shifting level probe.
    rows.push(vec![1.0; nodes]);
    debug_assert_eq!(rows.len(), nodes);
    rows
}

/// Applies one unit-scale delta row at magnitude `scale_mb` on top of
/// `base`, clamped into the feasible box `[0, avail]` per node — a probe
/// may never allocate negative memory or exceed a node's headroom.
pub fn apply_probe_delta(base: &[f64], delta: &[f64], scale_mb: f64, avail: &[f64]) -> Vec<f64> {
    assert!(scale_mb > 0.0);
    base.iter()
        .zip(delta)
        .zip(avail)
        .map(|((&b, &d), &cap)| (b + scale_mb * d).clamp(0.0, cap.max(0.0)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    #[test]
    fn emits_exactly_n_rows_for_many_shapes() {
        for (nodes, batch) in [(3, 2), (8, 4), (64, 8), (13, 4), (5, 8), (1, 2)] {
            let rows = batched_probe_deltas(nodes, batch);
            assert_eq!(rows.len(), nodes, "N={nodes} B={batch}");
            assert!(rows.iter().all(|r| r.len() == nodes));
        }
    }

    #[test]
    fn all_rows_but_the_level_probe_preserve_the_sum() {
        for (nodes, batch) in [(8, 4), (64, 8), (13, 4)] {
            let rows = batched_probe_deltas(nodes, batch);
            for (i, row) in rows[..rows.len() - 1].iter().enumerate() {
                let sum: f64 = row.iter().sum();
                assert!(sum.abs() < 1e-9, "row {i} sum {sum} (N={nodes} B={batch})");
            }
            let level: f64 = rows[rows.len() - 1].iter().sum();
            assert!((level - nodes as f64).abs() < 1e-12, "level probe shifts");
        }
    }

    #[test]
    fn full_blocks_are_sign_orthogonal_within_each_block() {
        let (nodes, batch) = (64, 8);
        let rows = batched_probe_deltas(nodes, batch);
        // Phase 1 occupies the first N − N/B rows, B−1 per block.
        let per_block = batch - 1;
        for b in 0..nodes / batch {
            let block_rows = &rows[b * per_block..(b + 1) * per_block];
            for (i, r) in block_rows.iter().enumerate() {
                // Support confined to the block, entries ±1.
                for (k, &v) in r.iter().enumerate() {
                    if (b * batch..(b + 1) * batch).contains(&k) {
                        assert!(v == 1.0 || v == -1.0);
                    } else {
                        assert_eq!(v, 0.0);
                    }
                }
                for s in block_rows.iter().skip(i + 1) {
                    assert!(dot(r, s).abs() < 1e-12, "Hadamard rows orthogonal");
                }
            }
        }
    }

    #[test]
    fn rows_are_linearly_independent() {
        // Gauss-eliminate the row set; rank must be N.
        for (nodes, batch) in [(8, 2), (16, 4), (64, 8), (13, 4)] {
            let mut m = batched_probe_deltas(nodes, batch);
            let mut rank = 0;
            for col in 0..nodes {
                let Some(p) = (rank..m.len()).find(|&r| m[r][col].abs() > 1e-9) else {
                    continue;
                };
                m.swap(rank, p);
                let pivot_row = m[rank].clone();
                let pivot = pivot_row[col];
                for row in m.iter_mut().skip(rank + 1) {
                    let f = row[col] / pivot;
                    if f != 0.0 {
                        for (x, pv) in row.iter_mut().zip(&pivot_row).skip(col) {
                            *x -= f * pv;
                        }
                    }
                }
                rank += 1;
            }
            assert_eq!(rank, nodes, "N={nodes} B={batch}");
        }
    }

    #[test]
    fn applied_probes_stay_inside_the_feasible_box() {
        let nodes = 16;
        let base = vec![0.5; nodes];
        let avail = vec![2.0; nodes];
        for row in batched_probe_deltas(nodes, 4) {
            let alloc = apply_probe_delta(&base, &row, 0.5, &avail);
            for &a in &alloc {
                assert!((0.0..=2.0).contains(&a), "alloc {a} out of box");
            }
        }
    }

    #[test]
    fn rank_reaches_min_bk_points_on_a_linear_surface() {
        use crate::measure::MeasureStore;
        use dmm_sim::SimTime;
        // Synthetic linear response-time surface; the anchor plus the plan,
        // recorded round by round, must grow the store's independent set to
        // min(B·k, N+1) after k rounds of B probes — i.e. no probe is ever
        // wasted on a direction already in the span.
        let (nodes, batch) = (16usize, 4usize);
        let rt = |x: &[f64]| 30.0 - 0.2 * x.iter().sum::<f64>();
        let base = vec![1.0; nodes];
        let avail = vec![4.0; nodes];
        let rows = batched_probe_deltas(nodes, batch);
        let mut store = MeasureStore::new(nodes);
        store.record(base.clone(), rt(&base), 5.0, SimTime::ZERO);
        for (i, row) in rows.iter().enumerate() {
            let alloc = apply_probe_delta(&base, row, 0.5, &avail);
            assert!(store.would_extend_rank(&alloc), "probe {i} wasted");
            let y = rt(&alloc);
            store.record(alloc, y, 5.0, SimTime::ZERO);
            if (i + 1) % batch == 0 {
                let k = (i + 1) / batch;
                let have = store.selected_points().len();
                assert!(
                    have >= (batch * k).min(nodes + 1),
                    "after {k} rounds: {have} independent points"
                );
            }
        }
        assert!(store.has_full_rank());
    }

    #[test]
    fn spec_validation() {
        assert!(ProbeSpec::Sequential.is_valid());
        assert!(ProbeSpec::Batched { batch: 8 }.is_valid());
        assert!(!ProbeSpec::Batched { batch: 0 }.is_valid());
        assert!(!ProbeSpec::Batched { batch: 1 }.is_valid());
        assert!(!ProbeSpec::Batched { batch: 6 }.is_valid());
    }
}
