//! # dmm-core — goal-oriented distributed buffer partitioning (ICDE 1999)
//!
//! The primary contribution of Sinnwell & König: an online, feedback-
//! controlled method that sizes per-class dedicated buffer pools across the
//! nodes of a NOW so that every goal class meets its user-specified mean
//! response time, while the no-goal class's response time is minimized.
//!
//! The five phases of the algorithm (paper §5) map onto this crate:
//!
//! | phase | module |
//! |-------|--------|
//! | (a) collect at the local agents | [`agent`] |
//! | (b) collect at the coordinator (measure points, incremental Gauss) | [`measure`] |
//! | (c) check against the goal with adaptive tolerance | [`tolerance`], [`coordinator`] |
//! | (d) optimize: hyperplane approximation + linear program | [`approx`], [`optimize`] |
//! | (e) allocate, best-effort, with feedback of granted sizes | [`coordinator`], `dmm-cluster` |
//!
//! [`system`] wires the phases into the discrete-event simulation of
//! `dmm-cluster`/`dmm-workload`, [`baselines`] provides the comparison
//! controllers (fragment fencing, class fencing, static, none), and
//! [`metrics`] implements the §7 measurement protocol (convergence counting,
//! the Fig. 2 series, replication to a 99 % confidence target).

pub mod agent;
pub mod approx;
pub mod baselines;
pub mod calibrate;
pub mod coordinator;
pub mod error;
pub mod measure;
pub mod metrics;
pub mod optimize;
pub mod probe;
pub mod replay;
pub mod system;
pub mod tolerance;

pub use approx::{fit_planes, upsample_planes, Planes};
pub use baselines::ControllerKind;
pub use calibrate::calibrate_goal_range;
pub use coordinator::{Coordinator, SatisfactionMode, Strategy};
pub use error::Error;
pub use measure::{MeasurePoint, MeasureStore};
pub use metrics::{ConvergenceStats, IntervalRecord};
pub use optimize::{solve_partitioning, Objective, PartitionProblem};
pub use probe::{apply_probe_delta, batched_probe_deltas, ProbeSpec};
pub use replay::{
    config_from_record, recorded_run_from_jsonl, rerun_lines, run_config_record, verify_jsonl,
    RecordedRun, ReplayReport,
};
pub use system::{Simulation, SystemConfig, SystemConfigBuilder};
pub use tolerance::ToleranceEstimator;
