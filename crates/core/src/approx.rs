//! Hyperplane approximation of the response-time surfaces (paper §4).
//!
//! From the selected measure points the coordinator fits two affine
//! functions of the class's allocation vector `x` (MB per node):
//!
//! * `RT̄_k(x) = ā_k·x + c̄_k` — Eq. 4, the goal class's weighted mean
//!   response time. Its gradient is expected (not required) to be ≤ 0:
//!   more dedicated buffer, lower response time.
//! * `RT̄_0(x) = ā_0·x + c̄_0` — Eq. 9, the no-goal response time as a
//!   function of *class k's* allocations. The paper notes "all the gradients
//!   ā_{0,i} are now greater than zero": taking memory away from the no-goal
//!   pool can only hurt it, so negative fitted components are measurement
//!   noise and are clamped to 0 before entering the LP objective.
//!
//! With exactly `N+1` points the fit interpolates (unique by the measure
//! store's independence invariant); with more it is least squares.

use dmm_linalg::hyperplane::{fit_exact, fit_least_squares};
use dmm_linalg::{Hyperplane, LinalgError};

use crate::measure::MeasurePoint;

/// The two fitted surfaces used by the optimization phase.
#[derive(Debug, Clone)]
pub struct Planes {
    /// Goal-class response time plane (Eq. 4).
    pub class: Hyperplane,
    /// No-goal response time plane (Eq. 9), gradient clamped ≥ 0.
    pub nogoal: Hyperplane,
}

/// Fits both planes from the selected measure points. Requires at least
/// `N+1` points; fails if the points are (numerically) degenerate.
pub fn fit_planes(points: &[&MeasurePoint]) -> Result<Planes, LinalgError> {
    let Some(first) = points.first() else {
        return Err(LinalgError::DimensionMismatch);
    };
    let dim = first.alloc_mb.len();
    let xs: Vec<Vec<f64>> = points.iter().map(|p| p.alloc_mb.clone()).collect();
    let ys_class: Vec<f64> = points.iter().map(|p| p.rt_class_ms).collect();
    let ys_nogoal: Vec<f64> = points.iter().map(|p| p.rt_nogoal_ms).collect();

    let fit = |ys: &[f64]| -> Result<Hyperplane, LinalgError> {
        if xs.len() == dim + 1 {
            fit_exact(&xs, ys)
        } else {
            fit_least_squares(&xs, ys)
        }
    };

    // §3's monotonicity assumption cuts both ways: dedicating more memory to
    // the class never slows the class down, and never speeds the no-goal
    // class up (the "gradients ā₀ᵢ are now greater than zero" remark after
    // Eq. 9). A fitted class slope ≥ 0 is therefore measurement noise; we
    // repair it to the mean of the credibly-negative components rather than
    // clamping to 0 — a zero slope would make that node useless to the LP's
    // equality constraint and can wedge the controller at a saturated
    // corner. If no component is negative the plane is flagged unusable via
    // `class_memory_helps`.
    let mut class = fit(&ys_class)?;
    let negatives: Vec<f64> = class.w.iter().copied().filter(|&w| w < 0.0).collect();
    if !negatives.is_empty() {
        let mean_neg = negatives.iter().sum::<f64>() / negatives.len() as f64;
        for w in &mut class.w {
            if *w >= 0.0 {
                *w = mean_neg;
            }
        }
    } else {
        for w in &mut class.w {
            *w = 0.0;
        }
    }
    let mut nogoal = fit(&ys_nogoal)?;
    for w in &mut nogoal.w {
        if *w < 0.0 {
            *w = 0.0;
        }
    }
    Ok(Planes { class, nogoal })
}

/// Stretches planes fitted on a `small.class.w.len()`-node system onto
/// `nodes` nodes by tiling the per-node gradients (`w[i % small_n]`) and
/// keeping the intercepts. The gradients of the §4 surfaces are per-node
/// marginal costs, so under a symmetric workload a small-system fit is a
/// serviceable prior for the large system — good enough to warm-start the
/// coordinator's measure store at full rank and skip the probe ramp
/// entirely; the feedback loop then corrects any residual model error.
pub fn upsample_planes(small: &Planes, nodes: usize) -> Planes {
    let tile = |h: &Hyperplane| Hyperplane {
        w: (0..nodes).map(|i| h.w[i % h.w.len()]).collect(),
        c: h.c,
    };
    Planes {
        class: tile(&small.class),
        nogoal: tile(&small.nogoal),
    }
}

impl Planes {
    /// Predicted goal-class response time at allocation `x` (MB per node).
    pub fn predict_class_ms(&self, x: &[f64]) -> f64 {
        self.class.eval(x)
    }

    /// Predicted no-goal response time at allocation `x`.
    pub fn predict_nogoal_ms(&self, x: &[f64]) -> f64 {
        self.nogoal.eval(x)
    }

    /// True if the class plane says more memory helps on at least one node —
    /// the precondition for the equality-constrained LP to be meaningful.
    pub fn class_memory_helps(&self) -> bool {
        self.class.w.iter().any(|&w| w < 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmm_sim::SimTime;

    fn point(alloc: Vec<f64>, rt_k: f64, rt_0: f64) -> MeasurePoint {
        MeasurePoint {
            alloc_mb: alloc,
            rt_class_ms: rt_k,
            rt_nogoal_ms: rt_0,
            at: SimTime::ZERO,
        }
    }

    #[test]
    fn recovers_synthetic_planes() {
        // RT_k = 20 − 4x₁ − 2x₂; RT_0 = 3 + 1x₁ + 0.5x₂.
        let pts = [
            point(vec![0.0, 0.0], 20.0, 3.0),
            point(vec![1.0, 0.0], 16.0, 4.0),
            point(vec![0.0, 2.0], 16.0, 4.0),
        ];
        let refs: Vec<&MeasurePoint> = pts.iter().collect();
        let planes = fit_planes(&refs).expect("independent points");
        assert!((planes.class.w[0] + 4.0).abs() < 1e-9);
        assert!((planes.class.w[1] + 2.0).abs() < 1e-9);
        assert!((planes.class.c - 20.0).abs() < 1e-9);
        assert!((planes.nogoal.w[0] - 1.0).abs() < 1e-9);
        assert!(planes.class_memory_helps());
        assert!((planes.predict_class_ms(&[1.0, 1.0]) - 14.0).abs() < 1e-9);
    }

    #[test]
    fn clamps_negative_nogoal_gradient() {
        // Noise gives RT_0 a negative slope on node 2; it must be clamped.
        let pts = [
            point(vec![0.0, 0.0], 10.0, 3.0),
            point(vec![1.0, 0.0], 9.0, 3.5),
            point(vec![0.0, 1.0], 9.5, 2.8), // "more dedicated, faster" noise
        ];
        let refs: Vec<&MeasurePoint> = pts.iter().collect();
        let planes = fit_planes(&refs).expect("fit");
        assert_eq!(planes.nogoal.w[1], 0.0);
        assert!(planes.nogoal.w[0] > 0.0);
    }

    #[test]
    fn degenerate_points_fail() {
        let pts = [
            point(vec![0.0, 0.0], 10.0, 3.0),
            point(vec![1.0, 1.0], 9.0, 3.5),
            point(vec![2.0, 2.0], 8.0, 4.0),
        ];
        let refs: Vec<&MeasurePoint> = pts.iter().collect();
        assert!(fit_planes(&refs).is_err());
    }

    #[test]
    fn least_squares_with_extra_points() {
        // Five noisy points on RT_k = 12 − 3x₁ − 1x₂.
        let f = |x: &[f64]| 12.0 - 3.0 * x[0] - 1.0 * x[1];
        let xs = [
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![2.0, 1.0],
        ];
        let noise = [0.05, -0.05, 0.05, -0.05, 0.0];
        let pts: Vec<MeasurePoint> = xs
            .iter()
            .zip(&noise)
            .map(|(x, n)| point(x.clone(), f(x) + n, 3.0))
            .collect();
        let refs: Vec<&MeasurePoint> = pts.iter().collect();
        let planes = fit_planes(&refs).expect("fit");
        assert!((planes.class.w[0] + 3.0).abs() < 0.15);
        assert!((planes.class.w[1] + 1.0).abs() < 0.15);
    }

    #[test]
    fn empty_input_fails() {
        assert!(fit_planes(&[]).is_err());
    }

    #[test]
    fn upsample_tiles_gradients_and_keeps_intercepts() {
        let small = Planes {
            class: Hyperplane {
                w: vec![-4.0, -2.0],
                c: 20.0,
            },
            nogoal: Hyperplane {
                w: vec![1.0, 0.5],
                c: 3.0,
            },
        };
        let big = upsample_planes(&small, 5);
        assert_eq!(big.class.w, vec![-4.0, -2.0, -4.0, -2.0, -4.0]);
        assert_eq!(big.class.c, 20.0);
        assert_eq!(big.nogoal.w, vec![1.0, 0.5, 1.0, 0.5, 1.0]);
        assert_eq!(big.nogoal.c, 3.0);
        assert!(big.class_memory_helps());
    }
}
