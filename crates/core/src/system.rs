//! The full simulated system: workload → data plane → agents → coordinators
//! → allocations, closed through the simulated network.
//!
//! This is the "detailed simulation prototype" of the paper's §7: the
//! feedback-controlled loop of §5 runs *inside* the discrete-event
//! simulation — agent reports, new allocations and grant confirmations are
//! control messages that traverse the shared LAN (and are accounted as
//! control traffic for the §7.5 overhead experiment), and every check phase
//! happens at a coordinator placed on a real node.

use dmm_buffer::ClassId;
use dmm_cluster::{ClusterEvent, ClusterParams, CostLevel, DataPlane, NodeId};
use dmm_obs::{Json, MetricsSnapshot, NoopSink, TraceSink};
use dmm_sim::{Engine, Handler, Scheduler, SimDuration, SimTime};
use dmm_workload::{GoalRange, GoalSchedule, WorkloadGenerator, WorkloadSpec};

use crate::agent::{AgentObservation, LocalAgent};
use crate::baselines::{ClassFencingState, ControllerKind, FragmentFencingState};
use crate::coordinator::{Coordinator, SatisfactionMode, Strategy, PAGES_PER_MB};
use crate::measure::MeasureStore;
use crate::metrics::{ConvergenceStats, IntervalRecord};

/// Full experiment configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Cluster hardware/protocol parameters. `goal_classes` is overridden
    /// from the workload.
    pub cluster: ClusterParams,
    /// The multiclass workload.
    pub workload: WorkloadSpec,
    /// Master seed; every stochastic stream derives from it.
    pub seed: u64,
    /// Observation interval (§7.1: 5000 ms).
    pub interval: SimDuration,
    /// Intervals to run before statistics collection starts (cache warm-up).
    pub warmup_intervals: u32,
    /// Which controller manages the goal classes.
    pub controller: ControllerKind,
    /// When set, every goal class re-randomizes its goal per the §7.1
    /// protocol within this range.
    pub goal_range: Option<GoalRange>,
    /// Agent significance threshold for reporting (fractional RT change).
    pub agent_significance: f64,
    /// Size of an agent report message in bytes.
    pub report_bytes: u64,
    /// Size of an allocation/grant message in bytes.
    pub alloc_msg_bytes: u64,
    /// How goal satisfaction is judged (the paper's experiments use the
    /// two-sided band; production SLAs read the goal as an upper bound).
    pub satisfaction: SatisfactionMode,
    /// Minimum total dedicated MB each goal class keeps (and receives at
    /// start-up): keeps the class on the controllable, dedicated branch of
    /// the response-time curve. 0 disables (the §7.4 sharing experiment
    /// needs pools to vanish entirely).
    pub release_floor_mb: f64,
}

impl SystemConfig {
    /// The paper's §7.2 base experiment: 3 nodes, 2 MB cache each, 2000
    /// pages, one goal class + no-goal, 4 pages/op, skew `theta`,
    /// 5000 ms observation intervals.
    pub fn base(seed: u64, theta: f64, initial_goal_ms: f64) -> Self {
        let cluster = ClusterParams::default();
        let workload = WorkloadSpec::base_two_class(
            cluster.nodes,
            cluster.db_pages,
            theta,
            0.006, // goal-class ops/ms per node (no-goal is 3x); worst-case below disk saturation
            initial_goal_ms,
        );
        SystemConfig {
            cluster,
            workload,
            seed,
            interval: SimDuration::from_millis(5_000),
            warmup_intervals: 4,
            controller: ControllerKind::default(),
            goal_range: None,
            agent_significance: 0.05,
            report_bytes: 64,
            alloc_msg_bytes: 64,
            satisfaction: SatisfactionMode::default(),
            release_floor_mb: 0.5,
        }
    }

    /// Node buffer size in MB.
    pub fn node_size_mb(&self) -> f64 {
        self.cluster.buffer_pages_per_node as f64 / PAGES_PER_MB
    }
}

/// Events of the closed-loop system.
#[derive(Debug, Clone)]
enum SysEvent {
    Data(ClusterEvent),
    Arrival {
        node: NodeId,
        class: ClassId,
    },
    IntervalEnd,
    Report {
        to: ClassId,
        obs: AgentObservation,
    },
    CoordCheck {
        class: ClassId,
    },
    Alloc {
        class: ClassId,
        node: NodeId,
        pages: usize,
    },
    Granted {
        class: ClassId,
        node: NodeId,
        requested: usize,
        granted: usize,
        avail: usize,
    },
}

/// Delay between the interval boundary and the coordinator check, giving
/// agent reports time to cross the LAN.
const CHECK_DELAY: SimDuration = SimDuration::from_millis(50);

struct SimState {
    plane: DataPlane,
    gen: WorkloadGenerator,
    /// `agents[class][node]`.
    agents: Vec<Vec<LocalAgent>>,
    /// `coordinators[class]`; `None` for the no-goal class.
    coordinators: Vec<Option<Coordinator>>,
    schedules: Vec<Option<GoalSchedule>>,
    convergence: Vec<ConvergenceStats>,
    records: Vec<Vec<IntervalRecord>>,
    coord_home: Vec<NodeId>,
    interval_idx: u32,
    interval: SimDuration,
    warmup_intervals: u32,
    report_bytes: u64,
    alloc_msg_bytes: u64,
    /// Structured trace receiver (§5 phases). NoopSink by default.
    sink: Box<dyn TraceSink>,
    /// Per-level access-cost observation counts at the previous interval
    /// boundary, for per-interval level shares.
    last_level_obs: [u64; 4],
    /// Fraction of last interval's observed accesses served per level.
    level_share: [f64; 4],
}

impl SimState {
    fn coord_mut(&mut self, class: ClassId) -> &mut Coordinator {
        self.coordinators[class.index()]
            .as_mut()
            .expect("goal class has a coordinator")
    }

    fn goal_class_ids(&self) -> Vec<ClassId> {
        self.coordinators
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_some())
            .map(|(i, _)| ClassId(i as u16))
            .collect()
    }

    fn schedule_plane(
        out: dmm_cluster::StepOutput,
        agents: &mut [Vec<LocalAgent>],
        sched: &mut Scheduler<SysEvent>,
    ) {
        if let Some((t, e)) = out.schedule {
            sched.at(t, SysEvent::Data(e));
        }
        if let Some(c) = out.completed {
            agents[c.class.index()][c.origin.index()].on_completion(c.response_ms());
        }
    }

    fn end_interval(&mut self, now: SimTime, sched: &mut Scheduler<SysEvent>) {
        self.interval_idx += 1;
        sched.after(self.interval, SysEvent::IntervalEnd);
        // Advance the benefit epoch and run the configured per-interval
        // maintenance: eager full re-pricing sweep, or the lazy decay that
        // defers recomputation to the eviction path (heat decays between
        // accesses; §6's dissemination protocols keep remote info current
        // the same way).
        self.plane.on_interval(now);
        // Per-interval storage-level shares from the cost estimator's
        // observation counters (tagged finished requests, §6).
        let mut deltas = [0u64; 4];
        let mut total = 0u64;
        for (i, level) in CostLevel::ALL.iter().enumerate() {
            let seen = self.plane.costs().observations(*level);
            deltas[i] = seen - self.last_level_obs[i];
            self.last_level_obs[i] = seen;
            total += deltas[i];
        }
        for (share, delta) in self.level_share.iter_mut().zip(deltas) {
            *share = if total == 0 {
                0.0
            } else {
                delta as f64 / total as f64
            };
        }
        let interval_ms = self.interval.as_millis_f64();
        let goal_ids = self.goal_class_ids();

        for class_agents in &mut self.agents {
            for agent in class_agents {
                let node = agent.node();
                let class = agent.class();
                let granted = self.plane.dedicated_pages(node, class);
                let avail = self.plane.avail_pages(node, class);
                let pool = self.plane.pool_stats(node, class);
                let (obs, significant) = agent.end_interval(now, interval_ms, granted, avail, pool);
                if !significant {
                    continue;
                }
                // Goal-class reports go to their coordinator; no-goal
                // reports fan out to every goal coordinator (§5(a)).
                let targets: Vec<ClassId> = if class.is_no_goal() {
                    goal_ids.clone()
                } else {
                    vec![class]
                };
                for to in targets {
                    let home = self.coord_home[to.index()];
                    let delivered = self.plane.send_control(node, home, self.report_bytes, now);
                    sched.at(
                        delivered,
                        SysEvent::Report {
                            to,
                            obs: obs.clone(),
                        },
                    );
                }
            }
        }
        for class in goal_ids {
            sched.after(CHECK_DELAY, SysEvent::CoordCheck { class });
        }

        if self.interval_idx == self.warmup_intervals {
            // Statistics window starts now: drop warm-up counters.
            self.plane.reset_stats();
            for class_agents in &mut self.agents {
                for agent in class_agents {
                    agent.reset_pool_baseline();
                }
            }
        }
    }

    fn coord_check(&mut self, class: ClassId, now: SimTime, sched: &mut Scheduler<SysEvent>) {
        let measuring = self.interval_idx > self.warmup_intervals;
        let home = self.coord_home[class.index()];
        let outcome = self.coord_mut(class).check(now);

        let record = IntervalRecord {
            interval: self.interval_idx.saturating_sub(1),
            observed_ms: outcome.observed_class_ms,
            goal_ms: self.coordinators[class.index()]
                .as_ref()
                .expect("goal class")
                .goal_ms(),
            nogoal_ms: outcome.observed_nogoal_ms,
            dedicated_bytes: self.plane.total_dedicated_bytes(class),
            satisfied: outcome.satisfied,
        };
        self.records[class.index()].push(record);

        if self.sink.enabled() {
            let phase = if outcome.settling {
                "settling"
            } else if outcome.new_alloc_mb.is_some() {
                "optimized"
            } else if outcome.satisfied == Some(true) {
                "satisfied"
            } else if outcome.satisfied == Some(false) {
                "violated_no_action"
            } else {
                "no_data"
            };
            let mut class_pool = dmm_buffer::PoolStats::default();
            let mut nogoal_pool = dmm_buffer::PoolStats::default();
            for n in 0..self.plane.num_nodes() {
                let node = NodeId(n as u16);
                class_pool.merge(&self.plane.pool_stats(node, class));
                nogoal_pool.merge(&self.plane.pool_stats(node, dmm_buffer::NO_GOAL));
            }
            let mut levels = Json::obj();
            for (i, level) in CostLevel::ALL.iter().enumerate() {
                levels = levels.field(level.name(), self.level_share[i]);
            }
            let rec = Json::obj()
                .field("type", "interval")
                .field("interval", record.interval as u64)
                .field("t_ms", now.as_millis_f64())
                .field("class", class.index() as u64)
                .field("observed_ms", record.observed_ms)
                .field("goal_ms", record.goal_ms)
                .field("nogoal_ms", record.nogoal_ms)
                .field("tolerance_ms", outcome.tolerance_ms)
                .field("satisfied", outcome.satisfied)
                .field("settling", outcome.settling)
                .field("store_cleared", outcome.store_cleared)
                .field("phase", phase)
                .field(
                    "dedicated_mb",
                    record.dedicated_bytes as f64 / (1024.0 * 1024.0),
                )
                .field("level_share", levels)
                .field("class_hit_rate", class_pool.hit_rate())
                .field("nogoal_hit_rate", nogoal_pool.hit_rate());
            self.sink.emit(&rec);

            if let Some(trace) = &outcome.optimize {
                let current: Vec<f64> = self.coordinators[class.index()]
                    .as_ref()
                    .expect("goal class")
                    .granted_mb()
                    .to_vec();
                let requested = outcome
                    .new_alloc_mb
                    .clone()
                    .unwrap_or_else(|| current.clone());
                let delta: f64 = requested.iter().sum::<f64>() - current.iter().sum::<f64>();
                let rec = Json::obj()
                    .field("type", "optimize")
                    .field("interval", record.interval as u64)
                    .field("class", class.index() as u64)
                    .field("path", trace.path)
                    .field("points", trace.points as u64)
                    .field(
                        "plane_w",
                        match &trace.plane_w {
                            Some(w) => Json::from(w.as_slice()),
                            None => Json::Null,
                        },
                    )
                    .field("plane_c", trace.plane_c)
                    .field("goal_attainable", trace.goal_attainable)
                    .field("predicted_class_ms", trace.predicted_class_ms)
                    .field("fallback", trace.fallback)
                    .field("current_mb", Json::from(current.as_slice()))
                    .field("requested_mb", Json::from(requested.as_slice()))
                    .field("delta_mb", delta);
                self.sink.emit(&rec);
            }
        }

        if let Some(satisfied) = outcome.satisfied {
            if measuring {
                self.convergence[class.index()].on_check(satisfied, outcome.new_alloc_mb.is_some());
            }
            if let Some(schedule) = &mut self.schedules[class.index()] {
                if let Some(new_goal) = schedule.observe_interval(satisfied) {
                    let old_goal = self.coord_mut(class).goal_ms();
                    self.coord_mut(class).set_goal(new_goal);
                    if measuring {
                        self.convergence[class.index()].on_goal_change();
                    }
                    if self.sink.enabled() {
                        let rec = Json::obj()
                            .field("type", "goal_change")
                            .field("interval", self.interval_idx.saturating_sub(1) as u64)
                            .field("t_ms", now.as_millis_f64())
                            .field("class", class.index() as u64)
                            .field("old_goal_ms", old_goal)
                            .field("new_goal_ms", new_goal);
                        self.sink.emit(&rec);
                    }
                }
            }
        }

        if let Some(alloc_mb) = outcome.new_alloc_mb {
            for (i, mb) in alloc_mb.iter().enumerate() {
                let node = NodeId(i as u16);
                let pages = (mb * PAGES_PER_MB).round().max(0.0) as usize;
                if pages == self.plane.dedicated_pages(node, class) {
                    continue; // nothing to change on this node
                }
                let delivered = self
                    .plane
                    .send_control(home, node, self.alloc_msg_bytes, now);
                sched.at(delivered, SysEvent::Alloc { class, node, pages });
            }
        }
    }
}

impl Handler<SysEvent> for SimState {
    fn handle(&mut self, now: SimTime, event: SysEvent, sched: &mut Scheduler<SysEvent>) {
        match event {
            SysEvent::Data(e) => {
                let out = self.plane.handle(now, e);
                Self::schedule_plane(out, &mut self.agents, sched);
            }
            SysEvent::Arrival { node, class } => {
                self.agents[class.index()][node.index()].on_arrival();
                let op = self.gen.make_op(node, class, now);
                let out = self.plane.start_operation(op, now);
                Self::schedule_plane(out, &mut self.agents, sched);
                let gap = self.gen.next_gap(node, class, now);
                sched.after(gap, SysEvent::Arrival { node, class });
            }
            SysEvent::IntervalEnd => self.end_interval(now, sched),
            SysEvent::Report { to, obs } => self.coord_mut(to).on_report(obs),
            SysEvent::CoordCheck { class } => self.coord_check(class, now, sched),
            SysEvent::Alloc { class, node, pages } => {
                let granted = self.plane.apply_allocation(node, class, pages, now);
                let avail = self.plane.avail_pages(node, class);
                let home = self.coord_home[class.index()];
                let delivered = self
                    .plane
                    .send_control(node, home, self.alloc_msg_bytes, now);
                sched.at(
                    delivered,
                    SysEvent::Granted {
                        class,
                        node,
                        requested: pages,
                        granted,
                        avail,
                    },
                );
            }
            SysEvent::Granted {
                class,
                node,
                requested,
                granted,
                avail,
            } => {
                if self.sink.enabled() {
                    let rec = Json::obj()
                        .field("type", "grant")
                        .field("t_ms", now.as_millis_f64())
                        .field("class", class.index() as u64)
                        .field("node", node.index() as u64)
                        .field("requested_pages", requested as u64)
                        .field("granted_pages", granted as u64)
                        .field("avail_pages", avail as u64);
                    self.sink.emit(&rec);
                }
                self.coord_mut(class).on_granted(node, granted, avail);
            }
        }
    }
}

/// A runnable closed-loop experiment.
pub struct Simulation {
    engine: Engine<SysEvent>,
    state: SimState,
}

impl Simulation {
    /// Builds the system and schedules the initial arrivals and interval
    /// clock.
    pub fn new(config: SystemConfig) -> Self {
        let mut cluster = config.cluster.clone();
        let goal_classes = config.workload.classes.len() - 1;
        cluster.goal_classes = goal_classes;
        config.workload.validate(cluster.nodes, cluster.db_pages);
        assert_eq!(
            config.workload.goal_classes(),
            goal_classes,
            "classes 1..=K must all be goal classes"
        );

        let mut plane = DataPlane::new(cluster.clone());
        let gen = WorkloadGenerator::new(config.workload.clone(), cluster.nodes, config.seed);
        let node_size_mb = config.node_size_mb();

        let mut agents = Vec::new();
        for spec in &config.workload.classes {
            let class_agents = (0..cluster.nodes)
                .map(|n| LocalAgent::new(NodeId(n as u16), spec.class, config.agent_significance))
                .collect();
            agents.push(class_agents);
        }

        let mut coordinators: Vec<Option<Coordinator>> = vec![None];
        let mut schedules: Vec<Option<GoalSchedule>> = vec![None];
        let mut coord_home = vec![NodeId(0)];
        for spec in &config.workload.classes[1..] {
            let class = spec.class;
            let home = NodeId(((class.index() - 1) % cluster.nodes) as u16);
            coord_home.push(home);
            let goal = spec.goal_ms.expect("goal class");
            let strategy = match config.controller {
                ControllerKind::Hyperplane { objective } => Strategy::Hyperplane {
                    store: MeasureStore::new(cluster.nodes),
                    objective,
                    probe_step: 0,
                },
                ControllerKind::FragmentFencing => Strategy::Fragment(FragmentFencingState::new()),
                ControllerKind::ClassFencing => Strategy::ClassFencing(ClassFencingState::new()),
                ControllerKind::Static { .. } | ControllerKind::None => Strategy::Fixed,
            };
            let mut coordinator =
                Coordinator::new(class, home, cluster.nodes, node_size_mb, goal, strategy);
            coordinator.set_satisfaction_mode(config.satisfaction);
            coordinator.set_release_floor(config.release_floor_mb);
            coordinators.push(Some(coordinator));
            schedules.push(config.goal_range.map(|range| {
                GoalSchedule::new(range, goal, config.seed ^ (0xC0FFEE + class.index() as u64))
            }));
        }

        // Static baseline: dedicate the fraction up front.
        if let ControllerKind::Static { fraction } = config.controller {
            assert!((0.0..=1.0).contains(&fraction));
            let pages = (fraction * cluster.buffer_pages_per_node as f64) as usize;
            for spec in &config.workload.classes[1..] {
                for n in 0..cluster.nodes {
                    plane.apply_allocation(NodeId(n as u16), spec.class, pages, SimTime::ZERO);
                }
            }
        } else if !matches!(config.controller, ControllerKind::None)
            && config.release_floor_mb > 0.0
        {
            // Active controllers start each goal class at its floor so the
            // class is on the controllable (dedicated) branch from t = 0.
            let pages_total = (config.release_floor_mb * PAGES_PER_MB) as usize;
            let per_node = pages_total.div_ceil(cluster.nodes);
            for spec in &config.workload.classes[1..] {
                for n in 0..cluster.nodes {
                    plane.apply_allocation(NodeId(n as u16), spec.class, per_node, SimTime::ZERO);
                }
            }
        }

        let mut state = SimState {
            plane,
            gen,
            agents,
            coordinators,
            schedules,
            convergence: vec![ConvergenceStats::new(); goal_classes + 1],
            records: vec![Vec::new(); goal_classes + 1],
            coord_home,
            interval_idx: 0,
            interval: config.interval,
            warmup_intervals: config.warmup_intervals,
            report_bytes: config.report_bytes,
            alloc_msg_bytes: config.alloc_msg_bytes,
            sink: Box::new(NoopSink),
            last_level_obs: [0; 4],
            level_share: [0.0; 4],
        };

        let mut engine = Engine::new();
        for (node, class) in state.gen.active_streams() {
            let gap = state.gen.next_gap(node, class, SimTime::ZERO);
            engine
                .scheduler()
                .at(SimTime::ZERO + gap, SysEvent::Arrival { node, class });
        }
        engine
            .scheduler()
            .at(SimTime::ZERO + config.interval, SysEvent::IntervalEnd);

        Simulation { engine, state }
    }

    /// Runs `n` more observation intervals (including their check phases).
    pub fn run_intervals(&mut self, n: u32) {
        let target = self.state.interval_idx + n;
        let horizon =
            SimTime::ZERO + self.state.interval * (target as u64) + self.state.interval / 2;
        self.engine.run_until(horizon, &mut self.state);
        debug_assert_eq!(self.state.interval_idx, target);
    }

    /// Runs until `class`'s convergence statistic meets the §7.1 accuracy
    /// target (99 % CI half-width < 1 iteration, at least `min_episodes`
    /// episodes) or `max_intervals` have elapsed. Returns true on accuracy.
    pub fn run_until_accurate(
        &mut self,
        class: ClassId,
        min_episodes: u64,
        max_intervals: u32,
    ) -> bool {
        while self.state.interval_idx < max_intervals {
            self.run_intervals(10);
            if self.convergence(class).accurate_enough(min_episodes) {
                return true;
            }
        }
        self.convergence(class).accurate_enough(min_episodes)
    }

    /// Intervals completed so far.
    pub fn intervals(&self) -> u32 {
        self.state.interval_idx
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Per-interval records of a goal class (one per check phase).
    pub fn records(&self, class: ClassId) -> &[IntervalRecord] {
        &self.state.records[class.index()]
    }

    /// Convergence statistics of a goal class.
    pub fn convergence(&self, class: ClassId) -> &ConvergenceStats {
        &self.state.convergence[class.index()]
    }

    /// The underlying cluster (network bytes, pool stats, directory…).
    pub fn plane(&self) -> &DataPlane {
        &self.state.plane
    }

    /// Replaces the structured-trace receiver (default: [`NoopSink`]).
    /// Swap in a [`dmm_obs::VecSink`] handle or a
    /// [`dmm_obs::JsonLinesSink`] to capture one record per control-loop
    /// phase, allocation grant and goal change.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.state.sink = sink;
    }

    /// A snapshot of every counter, gauge and histogram in the system at
    /// the current simulated instant: engine, network, disks, CPUs, buffer
    /// pools per class, and per-coordinator control-loop counters.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        snap.counter("sim.events", self.engine.delivered());
        snap.counter("sim.intervals", self.state.interval_idx as u64);
        self.state.plane.fill_metrics(&mut snap, self.engine.now());
        for coord in self.state.coordinators.iter().flatten() {
            let k = coord.class().index();
            snap.counter(format!("core.class{k}.checks"), coord.checks());
            snap.counter(
                format!("core.class{k}.optimizations"),
                coord.optimizations(),
            );
            snap.gauge(format!("core.class{k}.goal_ms"), coord.goal_ms());
            snap.gauge(format!("core.class{k}.tolerance_ms"), coord.tolerance_ms());
        }
        snap
    }

    /// The goal currently in force for a goal class.
    pub fn goal_ms(&self, class: ClassId) -> f64 {
        self.state.coordinators[class.index()]
            .as_ref()
            .expect("goal class")
            .goal_ms()
    }

    /// Migrates `class`'s coordinator to `node` (§5 load balancing). All
    /// agents are informed via one broadcast-equivalent control message per
    /// node, charged to the simulated LAN.
    pub fn migrate_coordinator(&mut self, class: ClassId, node: NodeId) {
        let old = self.state.coord_home[class.index()];
        if old == node {
            return;
        }
        let now = self.engine.now();
        let bytes = self.state.alloc_msg_bytes;
        for n in 0..self.state.plane.num_nodes() {
            self.state
                .plane
                .send_control(old, NodeId(n as u16), bytes, now);
        }
        self.state.coord_home[class.index()] = node;
        self.state.coordinators[class.index()]
            .as_mut()
            .expect("goal class")
            .migrate(node);
    }

    /// Node currently hosting `class`'s coordinator.
    pub fn coordinator_home(&self, class: ClassId) -> NodeId {
        self.state.coord_home[class.index()]
    }

    /// Changes `class`'s response time goal at the current instant (dynamic
    /// goal adjustment, §1: the method "allows dynamic adjustments of the
    /// class-specific response time goals").
    pub fn set_goal(&mut self, class: ClassId, goal_ms: f64) {
        self.state.coordinators[class.index()]
            .as_mut()
            .expect("goal class")
            .set_goal(goal_ms);
        if self.state.interval_idx > self.state.warmup_intervals {
            self.state.convergence[class.index()].on_goal_change();
        }
    }

    /// Manually dedicates `fraction` of every node's buffer to `class`
    /// (used by goal-range calibration; normally the controller does this).
    pub fn dedicate_fraction(&mut self, class: ClassId, fraction: f64) {
        assert!((0.0..=1.0).contains(&fraction));
        let pages = (fraction * self.state.plane.params().buffer_pages_per_node as f64) as usize;
        for n in 0..self.state.plane.num_nodes() {
            self.state
                .plane
                .apply_allocation(NodeId(n as u16), class, pages, self.engine.now());
        }
    }

    /// Mean observed response time of `class` over the last `n` records.
    pub fn mean_observed_ms(&self, class: ClassId, n: usize) -> Option<f64> {
        let records = self.records(class);
        let tail = &records[records.len().saturating_sub(n)..];
        let vals: Vec<f64> = tail.iter().filter_map(|r| r.observed_ms).collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmm_cluster::PAGE_BYTES;

    fn small_config(seed: u64) -> SystemConfig {
        let mut cfg = SystemConfig::base(seed, 0.0, 8.0);
        // Shrink for test speed: fewer pages, smaller buffers.
        cfg.cluster.db_pages = 400;
        cfg.cluster.buffer_pages_per_node = 96;
        cfg.workload = WorkloadSpec::base_two_class(3, 400, 0.0, 0.008, 8.0);
        cfg.warmup_intervals = 2;
        cfg
    }

    #[test]
    fn intervals_advance_and_record() {
        let mut sim = Simulation::new(small_config(1));
        sim.run_intervals(5);
        assert_eq!(sim.intervals(), 5);
        let recs = sim.records(ClassId(1));
        assert_eq!(recs.len(), 5, "one check per interval");
        // Operations actually flowed.
        assert!(sim.plane().completions() > 50);
        assert!(recs.iter().any(|r| r.observed_ms.is_some()));
    }

    #[test]
    fn same_seed_is_bit_reproducible() {
        let run = |seed| {
            let mut sim = Simulation::new(small_config(seed));
            sim.run_intervals(6);
            (
                sim.plane().completions(),
                sim.plane().network().data_bytes(),
                sim.records(ClassId(1)).to_vec(),
            )
        };
        let (c1, b1, r1) = run(42);
        let (c2, b2, r2) = run(42);
        assert_eq!(c1, c2);
        assert_eq!(b1, b2);
        assert_eq!(r1.len(), r2.len());
        for (a, b) in r1.iter().zip(&r2) {
            assert_eq!(a, b);
        }
        let (c3, _, _) = run(43);
        assert_ne!(c1, c3, "different seed, different trace");
    }

    #[test]
    fn violated_goal_grows_dedicated_memory() {
        let mut cfg = small_config(7);
        // Very tight goal: the controller must dedicate memory.
        cfg.workload.classes[1].goal_ms = Some(2.0);
        let mut sim = Simulation::new(cfg);
        sim.run_intervals(12);
        let dedicated = sim.plane().total_dedicated_bytes(ClassId(1));
        assert!(
            dedicated > 0,
            "controller should have dedicated memory: {dedicated}"
        );
    }

    #[test]
    fn no_controller_never_dedicates() {
        let mut cfg = small_config(7);
        cfg.controller = ControllerKind::None;
        cfg.workload.classes[1].goal_ms = Some(1.0); // hopeless goal
        let mut sim = Simulation::new(cfg);
        sim.run_intervals(8);
        assert_eq!(sim.plane().total_dedicated_bytes(ClassId(1)), 0);
    }

    #[test]
    fn static_controller_dedicates_up_front() {
        let mut cfg = small_config(7);
        cfg.controller = ControllerKind::Static { fraction: 0.25 };
        let sim = Simulation::new(cfg);
        let expect = (0.25 * 96.0) as u64 * 3 * PAGE_BYTES;
        assert_eq!(sim.plane().total_dedicated_bytes(ClassId(1)), expect);
    }

    #[test]
    fn control_traffic_is_tiny() {
        let mut sim = Simulation::new(small_config(3));
        sim.run_intervals(10);
        let net = sim.plane().network();
        assert!(net.control_bytes() > 0, "reports flowed");
        assert!(
            net.control_fraction() < 0.01,
            "control fraction {}",
            net.control_fraction()
        );
    }

    #[test]
    fn goal_schedule_changes_goals() {
        let mut cfg = small_config(5);
        cfg.goal_range = Some(GoalRange::new(4.0, 40.0));
        // Upper-bound reading: any response time below the loose goal counts
        // as satisfied, so the schedule fires quickly.
        cfg.satisfaction = SatisfactionMode::UpperBound;
        cfg.workload.classes[1].goal_ms = Some(30.0);
        let mut sim = Simulation::new(cfg);
        sim.run_intervals(40);
        // At least one goal change should have happened over 40 intervals.
        let recs = sim.records(ClassId(1));
        let goals: std::collections::HashSet<u64> =
            recs.iter().map(|r| r.goal_ms.to_bits()).collect();
        assert!(goals.len() > 1, "goal never changed");
    }
}
