//! The full simulated system: workload → data plane → agents → coordinators
//! → allocations, closed through the simulated network.
//!
//! This is the "detailed simulation prototype" of the paper's §7: the
//! feedback-controlled loop of §5 runs *inside* the discrete-event
//! simulation — agent reports, new allocations and grant confirmations are
//! control messages that traverse the shared LAN (and are accounted as
//! control traffic for the §7.5 overhead experiment), and every check phase
//! happens at a coordinator placed on a real node.

use dmm_buffer::{ClassId, TierPolicy};
use dmm_cluster::{
    ClusterEvent, ClusterParams, CostSlot, DataPlane, FabricSpec, FaultKind, FaultPlan, NodeId,
    PlacementSpec, RepricingMode, TierLadder, TierSpec,
};
use dmm_obs::{Json, MetricsSnapshot, NoopSink, SpanMode, Stage, TraceSink};
use dmm_sim::{
    Engine, ExecMode, Handler, Scheduler, SchedulerBackend, SimDuration, SimParams, SimTime,
    WindowHandler,
};
use dmm_workload::{GoalRange, GoalSchedule, WorkloadGenerator, WorkloadSpec};

use crate::agent::{AgentObservation, LocalAgent};
use crate::approx::Planes;
use crate::baselines::{ClassFencingState, ControllerKind, FragmentFencingState};
use crate::coordinator::{Coordinator, SatisfactionMode, Strategy, PAGES_PER_MB};
use crate::error::Error;
use crate::measure::MeasureStore;
use crate::metrics::{ConvergenceStats, IntervalRecord};
use crate::probe::ProbeSpec;

/// Full experiment configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Cluster hardware/protocol parameters. `goal_classes` is overridden
    /// from the workload.
    pub cluster: ClusterParams,
    /// The multiclass workload.
    pub workload: WorkloadSpec,
    /// Master seed; every stochastic stream derives from it.
    pub seed: u64,
    /// Observation interval (§7.1: 5000 ms).
    pub interval: SimDuration,
    /// Intervals to run before statistics collection starts (cache warm-up).
    pub warmup_intervals: u32,
    /// Which controller manages the goal classes.
    pub controller: ControllerKind,
    /// When set, every goal class re-randomizes its goal per the §7.1
    /// protocol within this range.
    pub goal_range: Option<GoalRange>,
    /// Agent significance threshold for reporting (fractional RT change).
    pub agent_significance: f64,
    /// Size of an agent report message in bytes.
    pub report_bytes: u64,
    /// Size of an allocation/grant message in bytes.
    pub alloc_msg_bytes: u64,
    /// How goal satisfaction is judged (the paper's experiments use the
    /// two-sided band; production SLAs read the goal as an upper bound).
    pub satisfaction: SatisfactionMode,
    /// Minimum total dedicated MB each goal class keeps (and receives at
    /// start-up): keeps the class on the controllable, dedicated branch of
    /// the response-time curve. 0 disables (the §7.4 sharing experiment
    /// needs pools to vanish entirely).
    pub release_floor_mb: f64,
    /// Deterministic fault-injection plan (crashes, restarts, message
    /// drops, disk stalls). `None` runs an immortal cluster.
    pub fault_plan: Option<FaultPlan>,
    /// Warm-up probing scheme of the hyperplane coordinators (default:
    /// the paper's sequential one-node-per-step probes).
    pub probe: ProbeSpec,
    /// Simulation-kernel parameters (event-queue backend). Both backends
    /// deliver identically; the heap exists for differential testing.
    pub sim: SimParams,
}

impl SystemConfig {
    /// Starts fluent construction of a configuration. Defaults match the
    /// paper's §7.2 base experiment: 3 nodes, 2 MB cache each, 2000 pages,
    /// one goal class + no-goal, 4 pages/op, uniform access, 5000 ms
    /// observation intervals.
    ///
    /// ```
    /// use dmm_core::system::SystemConfig;
    ///
    /// let config = SystemConfig::builder()
    ///     .seed(42)
    ///     .theta(0.5)
    ///     .goal_ms(15.0)
    ///     .build()
    ///     .expect("valid configuration");
    /// assert_eq!(config.seed, 42);
    /// ```
    pub fn builder() -> SystemConfigBuilder {
        let cluster = ClusterParams::default();
        SystemConfigBuilder {
            seed: 0,
            theta: 0.0,
            goal_ms: 10.0,
            nodes: cluster.nodes,
            db_pages: cluster.db_pages,
            buffer_pages_per_node: cluster.buffer_pages_per_node,
            goal_rate_per_ms: 0.006,
            goal_quantile: None,
            interval: SimDuration::from_millis(5_000),
            warmup_intervals: 4,
            controller: ControllerKind::default(),
            goal_range: None,
            satisfaction: SatisfactionMode::default(),
            release_floor_mb: 0.5,
            repricing: cluster.repricing,
            spans: cluster.spans,
            placement: cluster.placement,
            fault_plan: None,
            net_bits_per_sec: None,
            fabric: FabricSpec::default(),
            probe: ProbeSpec::default(),
            window_lookahead: true,
            tiers: None,
            tier_policy: TierPolicy::default(),
            sim: SimParams::default(),
        }
    }

    /// Node-local memory size in MB, summed over the memory tiers of the
    /// storage ladder (equals the buffer size for the default ladder).
    pub fn node_size_mb(&self) -> f64 {
        self.cluster.local_frames_per_node() as f64 / PAGES_PER_MB
    }
}

/// Fluent, validating construction of a [`SystemConfig`].
///
/// Obtained from [`SystemConfig::builder`]; every setter consumes and
/// returns the builder, and [`SystemConfigBuilder::build`] validates the
/// combination (returning [`Error::InvalidConfig`] / [`Error::InvalidGoal`]
/// instead of panicking deep inside the simulator). Fields not covered by a
/// setter keep their paper defaults; the built [`SystemConfig`]'s fields
/// remain public for fine-grained post-hoc adjustment.
#[derive(Debug, Clone)]
pub struct SystemConfigBuilder {
    seed: u64,
    theta: f64,
    goal_ms: f64,
    nodes: usize,
    db_pages: u32,
    buffer_pages_per_node: usize,
    goal_rate_per_ms: f64,
    goal_quantile: Option<f64>,
    interval: SimDuration,
    warmup_intervals: u32,
    controller: ControllerKind,
    goal_range: Option<GoalRange>,
    satisfaction: SatisfactionMode,
    release_floor_mb: f64,
    repricing: RepricingMode,
    spans: SpanMode,
    placement: PlacementSpec,
    fault_plan: Option<FaultPlan>,
    net_bits_per_sec: Option<u64>,
    fabric: FabricSpec,
    probe: ProbeSpec,
    window_lookahead: bool,
    tiers: Option<Vec<TierSpec>>,
    tier_policy: TierPolicy,
    sim: SimParams,
}

impl SystemConfigBuilder {
    /// Master seed; every stochastic stream derives from it.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Zipf skew of page accesses (0 = uniform).
    pub fn theta(mut self, theta: f64) -> Self {
        self.theta = theta;
        self
    }

    /// Initial response-time goal of the goal class (ms).
    pub fn goal_ms(mut self, goal_ms: f64) -> Self {
        self.goal_ms = goal_ms;
        self
    }

    /// Number of cluster nodes.
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Database size in pages.
    pub fn db_pages(mut self, pages: u32) -> Self {
        self.db_pages = pages;
        self
    }

    /// Buffer frames per node.
    pub fn buffer_pages_per_node(mut self, pages: usize) -> Self {
        self.buffer_pages_per_node = pages;
        self
    }

    /// Goal-class arrival rate per node (ops/ms; the no-goal class runs 3×).
    pub fn goal_rate_per_ms(mut self, rate: f64) -> Self {
        self.goal_rate_per_ms = rate;
        self
    }

    /// Bandwidth of the shared LAN medium in bits per second (§7.1 default:
    /// 100 Mbit/s). Scale-out experiments need this dial: with a shared
    /// medium, total network traffic grows with the node count while the
    /// medium's capacity does not, so the 1999-era fabric saturates long
    /// before N = 64. Per-message latency — and therefore the parallel
    /// executor's conservative window — is unaffected.
    pub fn net_bits_per_sec(mut self, bits_per_sec: u64) -> Self {
        self.net_bits_per_sec = Some(bits_per_sec);
        self
    }

    /// Network fabric topology (default: the paper's shared medium).
    /// [`FabricSpec::Switched`] gives every node dedicated full-duplex
    /// TX/RX links at [`net_bits_per_sec`](Self::net_bits_per_sec) each —
    /// aggregate capacity then scales with the node count, which is what
    /// lets a 100 Mbit/s-class fabric hold per-node-constant load at
    /// N = 64 where the shared medium saturates.
    pub fn fabric(mut self, fabric: FabricSpec) -> Self {
        self.fabric = fabric;
        self
    }

    /// Warm-up probing scheme of the hyperplane coordinators (default:
    /// the paper's sequential probes). [`ProbeSpec::Batched`] perturbs a
    /// sign-orthogonal batch of nodes per probe so no acted-on check is
    /// wasted on a rank-redundant partitioning.
    pub fn probe(mut self, probe: ProbeSpec) -> Self {
        self.probe = probe;
        self
    }

    /// Enables/disables lookahead in the windowed executor (default: on).
    /// Lookahead extends each parallel run past the conservative window
    /// using follow-up delays known at schedule time; it changes wall-clock
    /// batching only, never the event order or the trace bytes. The switch
    /// exists for A/B benchmarking.
    pub fn window_lookahead(mut self, on: bool) -> Self {
        self.window_lookahead = on;
        self
    }

    /// Makes the goal class's goal a *quantile* target: `goal_ms` then
    /// bounds the per-interval `q`-quantile of response time (e.g.
    /// `q = 0.95` for a p95 goal) instead of the mean. Quantile goals get
    /// wider tolerance bands and their own trace fields; mean-goal runs are
    /// byte-identical whether or not this code path exists.
    pub fn goal_quantile(mut self, q: f64) -> Self {
        self.goal_quantile = Some(q);
        self
    }

    /// Observation-interval length in milliseconds (§7.1: 5000).
    pub fn interval_ms(mut self, ms: u64) -> Self {
        self.interval = SimDuration::from_millis(ms);
        self
    }

    /// Warm-up intervals before statistics collection starts.
    pub fn warmup_intervals(mut self, n: u32) -> Self {
        self.warmup_intervals = n;
        self
    }

    /// Controller managing the goal classes.
    pub fn controller(mut self, controller: ControllerKind) -> Self {
        self.controller = controller;
        self
    }

    /// Enables §7.1 goal re-randomization within `range`.
    pub fn goal_range(mut self, range: GoalRange) -> Self {
        self.goal_range = Some(range);
        self
    }

    /// How goal satisfaction is judged.
    pub fn satisfaction(mut self, mode: SatisfactionMode) -> Self {
        self.satisfaction = mode;
        self
    }

    /// Minimum total dedicated MB per goal class (0 disables).
    pub fn release_floor_mb(mut self, mb: f64) -> Self {
        self.release_floor_mb = mb;
        self
    }

    /// Benefit-maintenance mode of the cost-based replacement policy.
    pub fn repricing(mut self, mode: RepricingMode) -> Self {
        self.repricing = mode;
        self
    }

    /// Operation-level span tracing mode (default: [`SpanMode::Off`]).
    /// [`SpanMode::Histograms`] aggregates per-class × per-stage response
    /// time histograms into the metrics snapshot;
    /// [`SpanMode::Sampled`] additionally emits a `span` trace record for a
    /// deterministic 1-in-N sample of operations.
    pub fn spans(mut self, mode: SpanMode) -> Self {
        self.spans = mode;
        self
    }

    /// Page-to-home placement scheme (default: static round-robin). The
    /// static schemes exist for differential testing;
    /// [`PlacementSpec::HotRing`] spreads hot pages across several homes.
    pub fn placement(mut self, placement: PlacementSpec) -> Self {
        self.placement = placement;
        self
    }

    /// Installs a deterministic fault-injection plan.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Replaces the storage hierarchy with a custom ladder of [`TierSpec`]s:
    /// one or more local memory tiers (fastest first, tier 0 may inherit
    /// the node buffer size), then the remote-memory rung, then the disk
    /// rung. [`SystemConfigBuilder::build`] validates the ladder (monotone
    /// latencies, pinned intermediate capacities, at most
    /// [`dmm_cluster::MAX_TIERS`] rungs) and returns [`Error::InvalidTier`]
    /// otherwise. The default three-rung ladder reproduces the paper's
    /// fixed local/remote/disk cost model byte-identically.
    pub fn tiers(mut self, tiers: Vec<TierSpec>) -> Self {
        self.tiers = Some(tiers);
        self
    }

    /// Placement policy across the local memory tiers of an extended
    /// ladder (default: hotness-based promotion/demotion). Irrelevant for
    /// the default ladder.
    pub fn tier_policy(mut self, policy: TierPolicy) -> Self {
        self.tier_policy = policy;
        self
    }

    /// Selects the event-queue backend (default: the timing wheel; the
    /// binary heap remains available as a reference for differential runs).
    pub fn scheduler(mut self, backend: SchedulerBackend) -> Self {
        self.sim.scheduler = backend;
        self
    }

    /// Selects the event-execution backend (default: sequential).
    /// [`ExecMode::Windowed`] executes runs of independent per-node events
    /// inside a conservative time window on a worker pool; traces are
    /// byte-identical to sequential execution at any worker count.
    pub fn execution(mut self, exec: ExecMode) -> Self {
        self.sim.exec = exec;
        self
    }

    /// Validates and constructs the configuration.
    pub fn build(self) -> Result<SystemConfig, Error> {
        if self.nodes == 0 {
            return Err(Error::InvalidConfig("the cluster needs at least one node"));
        }
        if self.nodes > u16::MAX as usize {
            // NodeId is a u16; more nodes would silently truncate.
            return Err(Error::InvalidConfig("node count exceeds u16::MAX"));
        }
        if let ExecMode::Windowed { workers } = self.sim.exec {
            if workers == 0 {
                return Err(Error::InvalidConfig(
                    "windowed execution needs at least one worker",
                ));
            }
        }
        if self.db_pages == 0 {
            return Err(Error::InvalidConfig("the database needs at least one page"));
        }
        if self.buffer_pages_per_node == 0 {
            return Err(Error::InvalidConfig("node buffers need at least one frame"));
        }
        if !(self.goal_ms > 0.0 && self.goal_ms.is_finite()) {
            return Err(Error::InvalidGoal(self.goal_ms));
        }
        if !(self.theta >= 0.0 && self.theta.is_finite()) {
            return Err(Error::InvalidConfig("skew theta must be finite and ≥ 0"));
        }
        if !(self.goal_rate_per_ms > 0.0 && self.goal_rate_per_ms.is_finite()) {
            return Err(Error::InvalidConfig("arrival rate must be positive"));
        }
        if let Some(q) = self.goal_quantile {
            if !(q.is_finite() && q > 0.0 && q < 1.0) {
                return Err(Error::InvalidConfig(
                    "goal quantile must lie strictly inside (0, 1)",
                ));
            }
        }
        if !(self.release_floor_mb >= 0.0 && self.release_floor_mb.is_finite()) {
            return Err(Error::InvalidConfig("release floor must be finite and ≥ 0"));
        }
        if self.interval.is_zero() {
            return Err(Error::InvalidConfig(
                "the observation interval must be positive",
            ));
        }
        if let Some(plan) = &self.fault_plan {
            plan.validate(self.nodes).map_err(Error::InvalidConfig)?;
        }
        let mut cluster = ClusterParams {
            nodes: self.nodes,
            db_pages: self.db_pages,
            buffer_pages_per_node: self.buffer_pages_per_node,
            repricing: self.repricing,
            spans: self.spans,
            placement: self.placement,
            tier_policy: self.tier_policy,
            ..ClusterParams::default()
        };
        if let Some(tiers) = self.tiers {
            cluster.tiers = TierLadder::new(tiers).map_err(Error::InvalidTier)?;
        }
        if let Some(bps) = self.net_bits_per_sec {
            if bps == 0 {
                return Err(Error::InvalidConfig("network bandwidth must be positive"));
            }
            cluster.net.bits_per_sec = bps;
        }
        if let FabricSpec::Switched {
            bisection_bits_per_sec: Some(0),
        } = self.fabric
        {
            return Err(Error::InvalidConfig(
                "bisection bandwidth must be positive (omit it for an ideal switch core)",
            ));
        }
        cluster.net.fabric = self.fabric;
        if !self.probe.is_valid() {
            return Err(Error::InvalidConfig(
                "probe batch size must be a power of two ≥ 2",
            ));
        }
        cluster.lookahead = self.window_lookahead;
        let mut workload = WorkloadSpec::base_two_class(
            self.nodes,
            self.db_pages,
            self.theta,
            self.goal_rate_per_ms,
            self.goal_ms,
        );
        if let Some(q) = self.goal_quantile {
            workload.classes[1].goal_metric = dmm_workload::GoalMetric::Quantile { q };
        }
        Ok(SystemConfig {
            cluster,
            workload,
            seed: self.seed,
            interval: self.interval,
            warmup_intervals: self.warmup_intervals,
            controller: self.controller,
            goal_range: self.goal_range,
            agent_significance: 0.05,
            report_bytes: 64,
            alloc_msg_bytes: 64,
            satisfaction: self.satisfaction,
            release_floor_mb: self.release_floor_mb,
            fault_plan: self.fault_plan,
            probe: self.probe,
            sim: self.sim,
        })
    }
}

/// Events of the closed-loop system.
#[derive(Debug, Clone)]
enum SysEvent {
    Data(ClusterEvent),
    Arrival {
        node: NodeId,
        class: ClassId,
    },
    IntervalEnd,
    Report {
        to: ClassId,
        obs: AgentObservation,
    },
    CoordCheck {
        class: ClassId,
    },
    Alloc {
        class: ClassId,
        node: NodeId,
        pages: usize,
    },
    Granted {
        class: ClassId,
        node: NodeId,
        requested: usize,
        granted: usize,
        avail: usize,
    },
    Fault {
        kind: FaultKind,
    },
}

/// Delay between the interval boundary and the coordinator check, giving
/// agent reports time to cross the LAN.
const CHECK_DELAY: SimDuration = SimDuration::from_millis(50);

struct SimState {
    plane: DataPlane,
    gen: WorkloadGenerator,
    /// `agents[class][node]`.
    agents: Vec<Vec<LocalAgent>>,
    /// `coordinators[class]`; `None` for the no-goal class.
    coordinators: Vec<Option<Coordinator>>,
    schedules: Vec<Option<GoalSchedule>>,
    convergence: Vec<ConvergenceStats>,
    records: Vec<Vec<IntervalRecord>>,
    coord_home: Vec<NodeId>,
    interval_idx: u32,
    interval: SimDuration,
    warmup_intervals: u32,
    report_bytes: u64,
    alloc_msg_bytes: u64,
    /// Structured trace receiver (§5 phases). NoopSink by default.
    sink: Box<dyn TraceSink>,
    /// Per-slot access-cost observation counts at the previous interval
    /// boundary, for per-interval level shares (one entry per storage slot
    /// of the configured tier ladder).
    last_level_obs: Vec<u64>,
    /// Fraction of last interval's observed accesses served per slot.
    level_share: Vec<f64>,
    /// Stable slot names of the ladder (`local_hit`, …), for trace fields.
    slot_names: Vec<String>,
    /// The run's replay closure, emitted as the leading `run_config`
    /// record whenever an enabled sink is attached.
    run_config: Json,
}

impl SimState {
    fn coord_mut(&mut self, class: ClassId) -> &mut Coordinator {
        self.coordinators[class.index()]
            .as_mut()
            .expect("goal class has a coordinator")
    }

    fn goal_class_ids(&self) -> Vec<ClassId> {
        self.coordinators
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_some())
            .map(|(i, _)| ClassId(i as u16))
            .collect()
    }

    fn schedule_plane(
        out: dmm_cluster::StepOutput,
        agents: &mut [Vec<LocalAgent>],
        sink: &mut dyn TraceSink,
        sched: &mut Scheduler<SysEvent>,
    ) {
        if let Some((t, e)) = out.schedule {
            sched.at(t, SysEvent::Data(e));
        }
        if let Some(c) = out.completed {
            let agent = &mut agents[c.class.index()][c.origin.index()];
            agent.on_completion(c.response_ms());
            // Quantile-goal classes additionally feed the integer-exact
            // response time into the interval histogram (no-op otherwise;
            // the mean path above is untouched either way).
            if agent.collects_rt_histograms() {
                agent.record_rt_ns(c.finished.since(c.arrival).as_nanos());
            }
            // Sampled operations carry their per-stage decomposition out of
            // the data plane; emit it as a `span` trace record. The stage
            // sums partition the response time integer-exactly (§5f of
            // DESIGN.md), so `response_ms` is redundant but convenient.
            if sink.enabled() {
                if let Some(stages) = c.span {
                    let mut nested = Json::obj();
                    for stage in Stage::ALL {
                        nested =
                            nested.field(&format!("{}_ns", stage.name()), stages[stage.index()]);
                    }
                    let record = Json::obj()
                        .field("type", "span")
                        .field("t_ms", c.finished.as_millis_f64())
                        .field("op", c.id.0)
                        .field("class", c.class.index() as u64)
                        .field("origin", c.origin.index() as u64)
                        .field("response_ms", c.response_ms())
                        .field("stages", nested);
                    sink.emit(&record);
                }
            }
        }
    }

    fn end_interval(&mut self, now: SimTime, sched: &mut Scheduler<SysEvent>) {
        self.interval_idx += 1;
        sched.after(self.interval, SysEvent::IntervalEnd);
        // Advance the benefit epoch and run the configured per-interval
        // maintenance: eager full re-pricing sweep, or the lazy decay that
        // defers recomputation to the eviction path (heat decays between
        // accesses; §6's dissemination protocols keep remote info current
        // the same way).
        self.plane.on_interval(now);
        // Per-interval storage-level shares from the cost estimator's
        // observation counters (tagged finished requests, §6), one slot per
        // rung of the configured ladder.
        let mut deltas = vec![0u64; self.last_level_obs.len()];
        let mut total = 0u64;
        for (i, delta) in deltas.iter_mut().enumerate() {
            let seen = self.plane.costs().observations(CostSlot(i as u8));
            *delta = seen - self.last_level_obs[i];
            self.last_level_obs[i] = seen;
            total += *delta;
        }
        for (share, delta) in self.level_share.iter_mut().zip(deltas) {
            *share = if total == 0 {
                0.0
            } else {
                delta as f64 / total as f64
            };
        }
        // Per-node home-load snapshot: how placement is spreading home
        // duty (pages owned, home reads served, remote fan-in) across the
        // cluster. One record per interval, for every placement scheme, so
        // scheme A vs scheme B traces differ only where the load does.
        if self.sink.enabled() {
            let load = self.plane.home_load();
            let rec = Json::obj()
                .field("type", "home_load")
                .field("interval", self.interval_idx.saturating_sub(1) as u64)
                .field("t_ms", now.as_millis_f64())
                .field("home_pages", Json::from(load.home_pages.as_slice()))
                .field("home_reads", Json::from(load.home_reads.as_slice()))
                .field("remote_fanin", Json::from(load.remote_fanin.as_slice()));
            self.sink.emit(&rec);
        }
        // Per-link network-load snapshot, only under a switched fabric: the
        // cumulative TX/RX busy fraction of every node's links (and of the
        // switch core, when its bisection capacity is finite). Shared-medium
        // traces carry no such record and stay byte-identical.
        if self.sink.enabled() {
            let net = self.plane.network();
            if net.is_switched() {
                let n = self.plane.num_nodes();
                let mut tx = Vec::with_capacity(n);
                let mut rx = Vec::with_capacity(n);
                for i in 0..n {
                    let u = net.link_utilization(i, now).expect("switched fabric");
                    tx.push(u.tx);
                    rx.push(u.rx);
                }
                let rec = Json::obj()
                    .field("type", "net_load")
                    .field("interval", self.interval_idx.saturating_sub(1) as u64)
                    .field("t_ms", now.as_millis_f64())
                    .field("tx_busy", Json::from(tx.as_slice()))
                    .field("rx_busy", Json::from(rx.as_slice()))
                    .field("bisection_busy", net.bisection_utilization(now));
                self.sink.emit(&rec);
            }
        }
        let interval_ms = self.interval.as_millis_f64();
        let goal_ids = self.goal_class_ids();

        for class_agents in &mut self.agents {
            for agent in class_agents {
                let node = agent.node();
                let class = agent.class();
                let granted = self.plane.dedicated_pages(node, class);
                let avail = self.plane.avail_pages(node, class);
                let pool = self.plane.pool_stats(node, class);
                let (obs, significant) = agent.end_interval(now, interval_ms, granted, avail, pool);
                // A crashed node's agent is volatile state: its window is
                // flushed (so pre-crash partials don't leak into the first
                // post-restart report) but nothing crosses the LAN.
                if !significant || !self.plane.is_up(node) {
                    continue;
                }
                // Goal-class reports go to their coordinator; no-goal
                // reports fan out to every goal coordinator (§5(a)).
                let targets: Vec<ClassId> = if class.is_no_goal() {
                    goal_ids.clone()
                } else {
                    vec![class]
                };
                for to in targets {
                    let home = self.coord_home[to.index()];
                    let delivered = self.plane.send_control(node, home, self.report_bytes, now);
                    sched.at(
                        delivered,
                        SysEvent::Report {
                            to,
                            obs: obs.clone(),
                        },
                    );
                }
            }
        }
        for class in goal_ids {
            sched.after(CHECK_DELAY, SysEvent::CoordCheck { class });
        }

        if self.interval_idx == self.warmup_intervals {
            // Statistics window starts now: drop warm-up counters.
            self.plane.reset_stats();
            for class_agents in &mut self.agents {
                for agent in class_agents {
                    agent.reset_pool_baseline();
                }
            }
        }
    }

    fn coord_check(&mut self, class: ClassId, now: SimTime, sched: &mut Scheduler<SysEvent>) {
        let measuring = self.interval_idx > self.warmup_intervals;
        let home = self.coord_home[class.index()];
        let outcome = self.coord_mut(class).check(now);

        let metric = self.coordinators[class.index()]
            .as_ref()
            .expect("goal class")
            .goal_metric();
        let record = IntervalRecord {
            interval: self.interval_idx.saturating_sub(1),
            observed_ms: outcome.observed_class_ms,
            observed_p_ms: outcome.observed_quantile_ms,
            goal_ms: self.coordinators[class.index()]
                .as_ref()
                .expect("goal class")
                .goal_ms(),
            nogoal_ms: outcome.observed_nogoal_ms,
            dedicated_bytes: self.plane.total_dedicated_bytes(class),
            satisfied: outcome.satisfied,
        };
        self.records[class.index()].push(record);

        if self.sink.enabled() {
            let phase = if outcome.settling {
                "settling"
            } else if outcome.new_alloc_mb.is_some() {
                "optimized"
            } else if outcome.satisfied == Some(true) {
                "satisfied"
            } else if outcome.satisfied == Some(false) {
                "violated_no_action"
            } else {
                "no_data"
            };
            let mut class_pool = dmm_buffer::PoolStats::default();
            let mut nogoal_pool = dmm_buffer::PoolStats::default();
            for n in 0..self.plane.num_nodes() {
                let node = NodeId(n as u16);
                class_pool.merge(&self.plane.pool_stats(node, class));
                nogoal_pool.merge(&self.plane.pool_stats(node, dmm_buffer::NO_GOAL));
            }
            let mut levels = Json::obj();
            for (name, share) in self.slot_names.iter().zip(&self.level_share) {
                levels = levels.field(name, *share);
            }
            let mut rec = Json::obj()
                .field("type", "interval")
                .field("interval", record.interval as u64)
                .field("t_ms", now.as_millis_f64())
                .field("class", class.index() as u64)
                .field("observed_ms", record.observed_ms)
                .field("goal_ms", record.goal_ms)
                .field("nogoal_ms", record.nogoal_ms)
                .field("tolerance_ms", outcome.tolerance_ms)
                .field("satisfied", outcome.satisfied)
                .field("settling", outcome.settling)
                .field("store_cleared", outcome.store_cleared)
                .field("phase", phase)
                .field(
                    "dedicated_mb",
                    record.dedicated_bytes as f64 / (1024.0 * 1024.0),
                )
                .field("level_share", levels)
                .field("class_hit_rate", class_pool.hit_rate())
                .field("nogoal_hit_rate", nogoal_pool.hit_rate())
                .field("residual_ms", outcome.prediction_residual_ms);
            // Quantile goals append their fields *after* the base layout,
            // so mean-goal traces stay byte-identical (the quantile path is
            // purely additive).
            if metric.is_quantile() {
                rec = rec
                    .field("observed_p_ms", outcome.observed_quantile_ms)
                    .field("goal_metric", metric.label().as_str());
            }
            // Extended ladders append per-tier occupancy *after* every other
            // extension, so default-ladder traces stay byte-identical.
            if self.plane.params().tiers.is_extended() {
                let mut tiers = Json::obj();
                for (name, resident, frames) in self.plane.tier_occupancy() {
                    tiers = tiers.field(
                        &name,
                        Json::obj()
                            .field("resident", resident)
                            .field("frames", frames),
                    );
                }
                rec = rec.field("tier_occupancy", tiers);
            }
            self.sink.emit(&rec);

            if let Some(trace) = &outcome.optimize {
                let current: Vec<f64> = self.coordinators[class.index()]
                    .as_ref()
                    .expect("goal class")
                    .granted_mb()
                    .to_vec();
                let requested = outcome
                    .new_alloc_mb
                    .clone()
                    .unwrap_or_else(|| current.clone());
                let delta: f64 = requested.iter().sum::<f64>() - current.iter().sum::<f64>();
                let mut rec = Json::obj()
                    .field("type", "optimize")
                    .field("interval", record.interval as u64)
                    .field("class", class.index() as u64)
                    .field("path", trace.path)
                    .field("points", trace.points as u64)
                    .field(
                        "plane_w",
                        match &trace.plane_w {
                            Some(w) => Json::from(w.as_slice()),
                            None => Json::Null,
                        },
                    )
                    .field("plane_c", trace.plane_c)
                    .field("goal_attainable", trace.goal_attainable)
                    .field("predicted_class_ms", trace.predicted_class_ms)
                    .field(
                        "fit_residuals_ms",
                        match &trace.fit_residuals_ms {
                            Some(r) => Json::from(r.as_slice()),
                            None => Json::Null,
                        },
                    )
                    .field("fit_rms_ms", trace.fit_rms_ms)
                    .field("fallback", trace.fallback)
                    .field("current_mb", Json::from(current.as_slice()))
                    .field("requested_mb", Json::from(requested.as_slice()))
                    .field("delta_mb", delta);
                // For quantile goals the fitted surface runs through
                // observed quantiles; label the record so analyzers know
                // what `predicted_class_ms` predicts.
                if metric.is_quantile() {
                    rec = rec.field("goal_metric", metric.label().as_str());
                }
                self.sink.emit(&rec);
            }
        }

        if let Some(satisfied) = outcome.satisfied {
            if measuring {
                self.convergence[class.index()].on_check(satisfied, outcome.new_alloc_mb.is_some());
            }
            if let Some(schedule) = &mut self.schedules[class.index()] {
                if let Some(new_goal) = schedule.observe_interval(satisfied) {
                    let old_goal = self.coord_mut(class).goal_ms();
                    self.coord_mut(class).set_goal(new_goal);
                    if measuring {
                        self.convergence[class.index()].on_goal_change();
                    }
                    if self.sink.enabled() {
                        let mut rec = Json::obj()
                            .field("type", "goal_change")
                            .field("interval", self.interval_idx.saturating_sub(1) as u64)
                            .field("t_ms", now.as_millis_f64())
                            .field("class", class.index() as u64)
                            .field("old_goal_ms", old_goal)
                            .field("new_goal_ms", new_goal);
                        if metric.is_quantile() {
                            rec = rec.field("goal_metric", metric.label().as_str());
                        }
                        self.sink.emit(&rec);
                    }
                }
            }
        }

        if let Some(alloc_mb) = outcome.new_alloc_mb {
            for (i, mb) in alloc_mb.iter().enumerate() {
                let node = NodeId(i as u16);
                let pages = (mb * PAGES_PER_MB).round().max(0.0) as usize;
                if pages == self.plane.dedicated_pages(node, class) {
                    continue; // nothing to change on this node
                }
                let delivered = self
                    .plane
                    .send_control(home, node, self.alloc_msg_bytes, now);
                sched.at(delivered, SysEvent::Alloc { class, node, pages });
            }
        }
    }

    /// Moves `class`'s coordinator to `to`, informing every node with one
    /// control message charged to the LAN. `broadcast_from` is the node that
    /// announces the move: the old home for a planned migration, the *new*
    /// home for a crash failover (the old home can no longer send).
    fn migrate_coordinator_from(
        &mut self,
        class: ClassId,
        to: NodeId,
        broadcast_from: NodeId,
        now: SimTime,
    ) {
        let bytes = self.alloc_msg_bytes;
        for n in 0..self.plane.num_nodes() {
            self.plane
                .send_control(broadcast_from, NodeId(n as u16), bytes, now);
        }
        self.coord_home[class.index()] = to;
        self.coord_mut(class).migrate(to);
    }

    /// Applies one scheduled fault: crash (coordinator failover, degraded
    /// re-optimization over the survivors) or restart (cold rejoin).
    fn on_fault(&mut self, kind: FaultKind, now: SimTime) {
        match kind {
            FaultKind::Crash(node) => {
                if !self.plane.is_up(node) {
                    return; // already down
                }
                self.plane.crash_node(node, now);
                let measuring = self.interval_idx > self.warmup_intervals;
                for class in self.goal_class_ids() {
                    if self.coord_home[class.index()] == node {
                        // Failover: the coordinator's volatile state is
                        // modeled as replicated, so the lowest-indexed
                        // survivor takes over and announces itself.
                        let new_home = (0..self.plane.num_nodes())
                            .map(|i| NodeId(i as u16))
                            .find(|&n| self.plane.is_up(n))
                            .expect("fault plans never crash the whole cluster");
                        self.migrate_coordinator_from(class, new_home, new_home, now);
                        if self.sink.enabled() {
                            let rec = Json::obj()
                                .field("type", "failover")
                                .field("t_ms", now.as_millis_f64())
                                .field("class", class.index() as u64)
                                .field("from", node.index() as u64)
                                .field("to", new_home.index() as u64);
                            self.sink.emit(&rec);
                        }
                    }
                    self.coord_mut(class).node_down(node);
                    if measuring {
                        // Re-convergence after the crash is a fresh episode.
                        self.convergence[class.index()].on_goal_change();
                    }
                }
                self.emit_fault_record("crash", node, now);
            }
            FaultKind::Restart(node) => {
                if self.plane.is_up(node) {
                    return; // already up
                }
                self.plane.restart_node(node);
                for class in self.goal_class_ids() {
                    self.coord_mut(class).node_up(node);
                }
                self.emit_fault_record("restart", node, now);
            }
        }
    }

    fn emit_fault_record(&mut self, kind: &str, node: NodeId, now: SimTime) {
        if !self.sink.enabled() {
            return;
        }
        let stats = self.plane.fault_stats();
        let rec = Json::obj()
            .field("type", "fault")
            .field("t_ms", now.as_millis_f64())
            .field("kind", kind)
            .field("node", node.index() as u64)
            .field("live_nodes", self.plane.live_nodes() as u64)
            .field("last_copy_losses", stats.last_copy_losses)
            .field("ops_aborted", stats.ops_aborted);
        self.sink.emit(&rec);
    }
}

impl Handler<SysEvent> for SimState {
    fn handle(&mut self, now: SimTime, event: SysEvent, sched: &mut Scheduler<SysEvent>) {
        match event {
            SysEvent::Data(e) => {
                let out = self.plane.handle(now, e);
                Self::schedule_plane(out, &mut self.agents, &mut *self.sink, sched);
            }
            SysEvent::Arrival { node, class } => {
                // Work arriving at a crashed node is lost (clients fail,
                // they don't queue); the stream keeps ticking so the node
                // resumes service immediately on restart.
                if self.plane.is_up(node) {
                    self.agents[class.index()][node.index()].on_arrival();
                    let op = self.gen.make_op(node, class, now);
                    let out = self.plane.start_operation(op, now);
                    Self::schedule_plane(out, &mut self.agents, &mut *self.sink, sched);
                }
                let gap = self.gen.next_gap(node, class, now);
                sched.after(gap, SysEvent::Arrival { node, class });
            }
            SysEvent::IntervalEnd => self.end_interval(now, sched),
            SysEvent::Report { to, obs } => self.coord_mut(to).on_report(obs),
            SysEvent::CoordCheck { class } => self.coord_check(class, now, sched),
            SysEvent::Alloc { class, node, pages } => {
                if !self.plane.is_up(node) {
                    return; // the allocation message reached a dead node
                }
                let granted = self.plane.apply_allocation(node, class, pages, now);
                let avail = self.plane.avail_pages(node, class);
                let home = self.coord_home[class.index()];
                let delivered = self
                    .plane
                    .send_control(node, home, self.alloc_msg_bytes, now);
                sched.at(
                    delivered,
                    SysEvent::Granted {
                        class,
                        node,
                        requested: pages,
                        granted,
                        avail,
                    },
                );
            }
            SysEvent::Granted {
                class,
                node,
                requested,
                granted,
                avail,
            } => {
                if !self.plane.is_up(node) {
                    return; // grant from a node that crashed in flight
                }
                if self.sink.enabled() {
                    let rec = Json::obj()
                        .field("type", "grant")
                        .field("t_ms", now.as_millis_f64())
                        .field("class", class.index() as u64)
                        .field("node", node.index() as u64)
                        .field("requested_pages", requested as u64)
                        .field("granted_pages", granted as u64)
                        .field("avail_pages", avail as u64);
                    self.sink.emit(&rec);
                }
                self.coord_mut(class).on_granted(node, granted, avail);
            }
            SysEvent::Fault { kind } => self.on_fault(kind, now),
        }
    }
}

impl WindowHandler<SysEvent> for SimState {
    fn classify(&self, event: &SysEvent) -> Option<u32> {
        match event {
            // Only data-plane events can be parallel-safe; the control
            // plane (arrivals, reports, checks, faults) shares state across
            // nodes and always executes inline.
            SysEvent::Data(e) => self.plane.classify(e),
            _ => None,
        }
    }

    fn execute_run(
        &mut self,
        run: &[(SimTime, SysEvent)],
        workers: usize,
        out: &mut Vec<(SimTime, SysEvent)>,
    ) {
        let data: Vec<(SimTime, ClusterEvent)> = run
            .iter()
            .map(|(t, e)| match e {
                SysEvent::Data(d) => (*t, *d),
                other => unreachable!("non-data event {other:?} in a parallel run"),
            })
            .collect();
        let mut follow = Vec::with_capacity(data.len());
        self.plane.execute_window(&data, workers, &mut follow);
        out.extend(follow.into_iter().map(|(t, e)| (t, SysEvent::Data(e))));
    }

    fn lookahead(&self, event: &SysEvent) -> Option<SimDuration> {
        match event {
            SysEvent::Data(e) => self.plane.lookahead(e),
            _ => None,
        }
    }
}

/// A runnable closed-loop experiment.
pub struct Simulation {
    engine: Engine<SysEvent>,
    state: SimState,
    exec: ExecMode,
}

impl Simulation {
    /// Builds the system and schedules the initial arrivals and interval
    /// clock.
    pub fn new(config: SystemConfig) -> Self {
        let mut cluster = config.cluster.clone();
        let goal_classes = config.workload.classes.len() - 1;
        cluster.goal_classes = goal_classes;
        config.workload.validate(cluster.nodes, cluster.db_pages);
        assert_eq!(
            config.workload.goal_classes(),
            goal_classes,
            "classes 1..=K must all be goal classes"
        );

        let mut plane = DataPlane::new(cluster.clone());
        if let Some(plan) = &config.fault_plan {
            plan.validate(cluster.nodes)
                .expect("invalid fault plan (SystemConfig::builder() validates this)");
            plane.install_faults(plan);
        }
        let gen = WorkloadGenerator::new(config.workload.clone(), cluster.nodes, config.seed);
        let node_size_mb = config.node_size_mb();

        let mut agents = Vec::new();
        for spec in &config.workload.classes {
            let class_agents = (0..cluster.nodes)
                .map(|n| {
                    let mut agent =
                        LocalAgent::new(NodeId(n as u16), spec.class, config.agent_significance);
                    // Quantile-goal classes collect per-interval RT
                    // histograms; everyone else keeps the cheap mean-only
                    // path (and mean-goal traces stay byte-identical).
                    if spec.goal_metric.is_quantile() {
                        agent.enable_rt_histograms();
                    }
                    agent
                })
                .collect();
            agents.push(class_agents);
        }

        let mut coordinators: Vec<Option<Coordinator>> = vec![None];
        let mut schedules: Vec<Option<GoalSchedule>> = vec![None];
        let mut coord_home = vec![NodeId(0)];
        for spec in &config.workload.classes[1..] {
            let class = spec.class;
            let home = NodeId(((class.index() - 1) % cluster.nodes) as u16);
            coord_home.push(home);
            let goal = spec.goal_ms.expect("goal class");
            let strategy = match config.controller {
                ControllerKind::Hyperplane { objective } => Strategy::Hyperplane {
                    store: MeasureStore::new(cluster.nodes),
                    objective,
                    probe_step: 0,
                },
                ControllerKind::FragmentFencing => Strategy::Fragment(FragmentFencingState::new()),
                ControllerKind::ClassFencing => Strategy::ClassFencing(ClassFencingState::new()),
                ControllerKind::Static { .. } | ControllerKind::None => Strategy::Fixed,
            };
            let mut coordinator =
                Coordinator::new(class, home, cluster.nodes, node_size_mb, goal, strategy);
            coordinator.set_satisfaction_mode(config.satisfaction);
            coordinator.set_release_floor(config.release_floor_mb);
            coordinator.set_goal_metric(spec.goal_metric);
            if let ProbeSpec::Batched { batch } = config.probe {
                coordinator.set_probe_batch(batch);
            }
            coordinators.push(Some(coordinator));
            schedules.push(config.goal_range.map(|range| {
                GoalSchedule::new(range, goal, config.seed ^ (0xC0FFEE + class.index() as u64))
            }));
        }

        // Static baseline: dedicate the fraction up front.
        if let ControllerKind::Static { fraction } = config.controller {
            assert!((0.0..=1.0).contains(&fraction));
            let pages = (fraction * cluster.local_frames_per_node() as f64) as usize;
            for spec in &config.workload.classes[1..] {
                for n in 0..cluster.nodes {
                    plane.apply_allocation(NodeId(n as u16), spec.class, pages, SimTime::ZERO);
                }
            }
        } else if !matches!(config.controller, ControllerKind::None)
            && config.release_floor_mb > 0.0
        {
            // Active controllers start each goal class at its floor so the
            // class is on the controllable (dedicated) branch from t = 0.
            let pages_total = (config.release_floor_mb * PAGES_PER_MB) as usize;
            let per_node = pages_total.div_ceil(cluster.nodes);
            for spec in &config.workload.classes[1..] {
                for n in 0..cluster.nodes {
                    plane.apply_allocation(NodeId(n as u16), spec.class, per_node, SimTime::ZERO);
                }
            }
        }

        let mut state = SimState {
            plane,
            gen,
            agents,
            coordinators,
            schedules,
            convergence: vec![ConvergenceStats::new(); goal_classes + 1],
            records: vec![Vec::new(); goal_classes + 1],
            coord_home,
            interval_idx: 0,
            interval: config.interval,
            warmup_intervals: config.warmup_intervals,
            report_bytes: config.report_bytes,
            alloc_msg_bytes: config.alloc_msg_bytes,
            sink: Box::new(NoopSink),
            last_level_obs: vec![0; cluster.tiers.num_slots()],
            level_share: vec![0.0; cluster.tiers.num_slots()],
            slot_names: cluster.tiers.slot_names(),
            run_config: crate::replay::run_config_record(&config),
        };

        let exec = config.sim.exec;
        let mut engine = Engine::with_params(config.sim);
        for (node, class) in state.gen.active_streams() {
            let gap = state.gen.next_gap(node, class, SimTime::ZERO);
            engine
                .scheduler()
                .at(SimTime::ZERO + gap, SysEvent::Arrival { node, class });
        }
        engine
            .scheduler()
            .at(SimTime::ZERO + config.interval, SysEvent::IntervalEnd);
        if let Some(plan) = &config.fault_plan {
            for fault in plan.events_in_order() {
                engine
                    .scheduler()
                    .at(fault.at, SysEvent::Fault { kind: fault.kind });
            }
        }

        Simulation {
            engine,
            state,
            exec,
        }
    }

    /// Runs `n` more observation intervals (including their check phases).
    pub fn run_intervals(&mut self, n: u32) {
        let target = self.state.interval_idx + n;
        let horizon =
            SimTime::ZERO + self.state.interval * (target as u64) + self.state.interval / 2;
        match self.exec {
            ExecMode::Sequential => {
                self.engine.run_until(horizon, &mut self.state);
            }
            ExecMode::Windowed { workers } => {
                let window = self.state.plane.params().conservative_window();
                self.engine
                    .run_until_windowed(horizon, window, workers, &mut self.state);
            }
        }
        debug_assert_eq!(self.state.interval_idx, target);
    }

    /// Runs until `class`'s convergence statistic meets the §7.1 accuracy
    /// target (99 % CI half-width < 1 iteration, at least `min_episodes`
    /// episodes) or `max_intervals` have elapsed. Returns true on accuracy.
    pub fn run_until_accurate(
        &mut self,
        class: ClassId,
        min_episodes: u64,
        max_intervals: u32,
    ) -> bool {
        while self.state.interval_idx < max_intervals {
            self.run_intervals(10);
            if self.convergence(class).accurate_enough(min_episodes) {
                return true;
            }
        }
        self.convergence(class).accurate_enough(min_episodes)
    }

    /// Intervals completed so far.
    pub fn intervals(&self) -> u32 {
        self.state.interval_idx
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Per-interval records of a goal class (one per check phase).
    pub fn records(&self, class: ClassId) -> &[IntervalRecord] {
        &self.state.records[class.index()]
    }

    /// Convergence statistics of a goal class.
    pub fn convergence(&self, class: ClassId) -> &ConvergenceStats {
        &self.state.convergence[class.index()]
    }

    /// The underlying cluster (network bytes, pool stats, directory…).
    pub fn plane(&self) -> &DataPlane {
        &self.state.plane
    }

    /// Windowed-executor batching counters (runs flushed, events executed
    /// through runs). All zero under sequential execution.
    pub fn window_stats(&self) -> dmm_sim::WindowStats {
        self.engine.window_stats()
    }

    /// The most recent response-time surfaces `class`'s coordinator fitted
    /// (or was warm-started with), if any — the donor for a cross-scale
    /// warm start via [`Simulation::warm_start_class`].
    pub fn fitted_planes(&self, class: ClassId) -> Option<Planes> {
        self.state.coordinators[class.index()]
            .as_ref()
            .and_then(|c| c.fitted_planes().cloned())
    }

    /// Seeds `class`'s coordinator with a full-rank synthetic measure set
    /// derived from `planes` (typically a smaller system's fit stretched by
    /// [`crate::approx::upsample_planes`]), skipping the ~N-interval probe
    /// ramp. Returns [`Error::UnknownClass`]/[`Error::NotAGoalClass`] on a
    /// bad class; the plane width must match the node count.
    pub fn warm_start_class(&mut self, class: ClassId, planes: &Planes) -> Result<(), Error> {
        self.check_goal_class(class)?;
        let now = self.engine.now();
        self.state.coord_mut(class).warm_start(planes, now);
        Ok(())
    }

    /// Replaces the structured-trace receiver (default: [`NoopSink`]).
    /// Swap in a [`dmm_obs::VecSink`] handle or a
    /// [`dmm_obs::JsonLinesSink`] to capture one record per control-loop
    /// phase, allocation grant and goal change. An enabled sink first
    /// receives the run's `run_config` record — the replay closure that
    /// lets `dmm-trace replay` reconstruct and re-run this configuration.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.state.sink = sink;
        if self.state.sink.enabled() {
            let record = self.state.run_config.clone();
            self.state.sink.emit(&record);
        }
    }

    /// Event-queue work counters (pushes, peak depth, cascades, per-level
    /// occupancy) of the underlying engine.
    pub fn sched_stats(&self) -> dmm_sim::SchedStats {
        self.engine.sched_stats()
    }

    /// A snapshot of every counter, gauge and histogram in the system at
    /// the current simulated instant: engine, network, disks, CPUs, buffer
    /// pools per class, and per-coordinator control-loop counters.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        snap.counter("sim.events", self.engine.delivered());
        snap.counter("sim.intervals", self.state.interval_idx as u64);
        let sched = self.engine.sched_stats();
        snap.counter("sim.sched.pushes", sched.pushes);
        snap.counter("sim.sched.peak_pending", sched.peak_pending);
        snap.counter("sim.sched.cascaded", sched.cascaded);
        for (level, &n) in sched.level_pushes.iter().enumerate() {
            if n > 0 {
                if level == dmm_sim::wheel::WHEEL_LEVELS {
                    snap.counter("sim.sched.overflow.pushes", n);
                } else {
                    snap.counter(format!("sim.sched.level{level}.pushes"), n);
                }
            }
        }
        let windows = self.engine.window_stats();
        snap.counter("sim.exec.runs", windows.runs);
        snap.counter("sim.exec.run_events", windows.run_events);
        // Sink-health counters are zero-suppressed so healthy traces stay
        // byte-identical across sink implementations.
        if self.state.sink.write_errors() > 0 {
            snap.counter("obs.sink.errors", self.state.sink.write_errors());
        }
        if self.state.sink.dropped_records() > 0 {
            snap.counter(
                "obs.sink.dropped_records",
                self.state.sink.dropped_records(),
            );
        }
        self.state.plane.fill_metrics(&mut snap, self.engine.now());
        for coord in self.state.coordinators.iter().flatten() {
            let k = coord.class().index();
            snap.counter(format!("core.class{k}.checks"), coord.checks());
            snap.counter(
                format!("core.class{k}.optimizations"),
                coord.optimizations(),
            );
            snap.gauge(format!("core.class{k}.goal_ms"), coord.goal_ms());
            snap.gauge(format!("core.class{k}.tolerance_ms"), coord.tolerance_ms());
            if let Some(r) = coord.residual_ewma_ms() {
                snap.gauge(format!("core.class{k}.residual_ewma_ms"), r);
            }
            // e.g. `core.class1.p95_ms`: last observed goal-quantile of a
            // quantile-goal class.
            if coord.goal_metric().is_quantile() {
                if let Some(p) = coord.last_quantile_ms() {
                    let label = coord.goal_metric().label();
                    snap.gauge(format!("core.class{k}.{label}_ms"), p);
                }
            }
        }
        snap
    }

    /// The goal currently in force for a goal class.
    pub fn goal_ms(&self, class: ClassId) -> f64 {
        self.state.coordinators[class.index()]
            .as_ref()
            .expect("goal class")
            .goal_ms()
    }

    /// Validates that `class` exists and has a coordinator.
    fn check_goal_class(&self, class: ClassId) -> Result<(), Error> {
        if class.index() >= self.state.coordinators.len() {
            return Err(Error::UnknownClass(class));
        }
        if self.state.coordinators[class.index()].is_none() {
            return Err(Error::NotAGoalClass(class));
        }
        Ok(())
    }

    /// Migrates `class`'s coordinator to `node` (§5 load balancing). All
    /// agents are informed via one broadcast-equivalent control message per
    /// node, charged to the simulated LAN. Fails if `class` has no
    /// coordinator or `node` is unknown or down.
    pub fn migrate_coordinator(&mut self, class: ClassId, node: NodeId) -> Result<(), Error> {
        self.check_goal_class(class)?;
        if node.index() >= self.state.plane.num_nodes() {
            return Err(Error::UnknownNode(node));
        }
        if !self.state.plane.is_up(node) {
            return Err(Error::NodeDown(node));
        }
        let old = self.state.coord_home[class.index()];
        if old == node {
            return Ok(());
        }
        let now = self.engine.now();
        self.state.migrate_coordinator_from(class, node, old, now);
        Ok(())
    }

    /// Node currently hosting `class`'s coordinator.
    pub fn coordinator_home(&self, class: ClassId) -> NodeId {
        self.state.coord_home[class.index()]
    }

    /// Changes `class`'s response time goal at the current instant (dynamic
    /// goal adjustment, §1: the method "allows dynamic adjustments of the
    /// class-specific response time goals"). Fails if `class` has no
    /// coordinator or the goal is not positive and finite.
    pub fn set_goal(&mut self, class: ClassId, goal_ms: f64) -> Result<(), Error> {
        self.check_goal_class(class)?;
        if !(goal_ms > 0.0 && goal_ms.is_finite()) {
            return Err(Error::InvalidGoal(goal_ms));
        }
        self.state.coord_mut(class).set_goal(goal_ms);
        if self.state.interval_idx > self.state.warmup_intervals {
            self.state.convergence[class.index()].on_goal_change();
        }
        Ok(())
    }

    /// Manually dedicates `fraction` of every node's buffer to `class`
    /// (used by goal-range calibration; normally the controller does this).
    /// Fails if `class` has no coordinator or `fraction` is outside `[0, 1]`.
    pub fn dedicate_fraction(&mut self, class: ClassId, fraction: f64) -> Result<(), Error> {
        self.check_goal_class(class)?;
        if !fraction.is_finite() || !(0.0..=1.0).contains(&fraction) {
            return Err(Error::InvalidFraction(fraction));
        }
        let pages = (fraction * self.state.plane.params().local_frames_per_node() as f64) as usize;
        for n in 0..self.state.plane.num_nodes() {
            self.state
                .plane
                .apply_allocation(NodeId(n as u16), class, pages, self.engine.now());
        }
        Ok(())
    }

    /// Mean observed response time of `class` over the last `n` records.
    pub fn mean_observed_ms(&self, class: ClassId, n: usize) -> Option<f64> {
        let records = self.records(class);
        let tail = &records[records.len().saturating_sub(n)..];
        let vals: Vec<f64> = tail.iter().filter_map(|r| r.observed_ms).collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Mean of the observed goal-quantile over the last `n` records
    /// (quantile-goal classes only; `None` when no record carries one).
    /// Used by quantile-goal calibration the way
    /// [`Simulation::mean_observed_ms`] serves mean goals.
    pub fn mean_observed_quantile_ms(&self, class: ClassId, n: usize) -> Option<f64> {
        let records = self.records(class);
        let tail = &records[records.len().saturating_sub(n)..];
        let vals: Vec<f64> = tail.iter().filter_map(|r| r.observed_p_ms).collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Cumulative completed operations of `class` across all nodes (from
    /// the agents' lifetime counters; unaffected by the warm-up stats
    /// reset). The `tail` bench uses this to measure batch makespan — the
    /// simulated time by which the batch class has finished a fixed number
    /// of operations.
    pub fn class_completions(&self, class: ClassId) -> u64 {
        self.state.agents[class.index()]
            .iter()
            .map(|a| a.completions_total())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmm_cluster::PAGE_BYTES;

    fn small_config(seed: u64) -> SystemConfig {
        // Shrunk from the paper's base experiment for test speed: fewer
        // pages, smaller buffers.
        SystemConfig::builder()
            .seed(seed)
            .goal_ms(8.0)
            .db_pages(400)
            .buffer_pages_per_node(96)
            .goal_rate_per_ms(0.008)
            .warmup_intervals(2)
            .build()
            .expect("valid test config")
    }

    #[test]
    fn scheduler_backends_produce_identical_runs() {
        let mut records = Vec::new();
        for backend in [SchedulerBackend::Wheel, SchedulerBackend::Heap] {
            let config = SystemConfig::builder()
                .seed(11)
                .goal_ms(8.0)
                .db_pages(400)
                .buffer_pages_per_node(96)
                .goal_rate_per_ms(0.008)
                .warmup_intervals(2)
                .scheduler(backend)
                .build()
                .expect("valid test config");
            assert_eq!(config.sim.scheduler, backend);
            let mut sim = Simulation::new(config);
            sim.run_intervals(10);
            records.push((
                sim.records(ClassId(0)).to_vec(),
                sim.metrics_snapshot().to_json().to_string(),
            ));
        }
        assert_eq!(records[0].0, records[1].0, "interval records diverged");
        // Full metrics agree except the scheduler's own counters
        // (cascades/level occupancy are wheel-specific by design).
        assert_ne!(records[0].1, records[1].1);
    }

    #[test]
    fn builder_rejects_bad_inputs() {
        assert_eq!(
            SystemConfig::builder().nodes(0).build().unwrap_err(),
            Error::InvalidConfig("the cluster needs at least one node")
        );
        assert!(matches!(
            SystemConfig::builder().goal_ms(-3.0).build().unwrap_err(),
            Error::InvalidGoal(_)
        ));
        assert!(matches!(
            SystemConfig::builder()
                .goal_rate_per_ms(0.0)
                .build()
                .unwrap_err(),
            Error::InvalidConfig(_)
        ));
        // An invalid fault plan is caught at build time, not inside the sim.
        let plan = FaultPlan::new(1).crash_ms(NodeId(7), 1_000);
        assert!(matches!(
            SystemConfig::builder()
                .fault_plan(plan)
                .build()
                .unwrap_err(),
            Error::InvalidConfig(_)
        ));
        // NodeId is a u16: node counts beyond it are a config error, not a
        // silent truncation (u16::MAX itself is fine).
        assert_eq!(
            SystemConfig::builder()
                .nodes(u16::MAX as usize + 1)
                .build()
                .unwrap_err(),
            Error::InvalidConfig("node count exceeds u16::MAX")
        );
        assert_eq!(
            SystemConfig::builder()
                .execution(ExecMode::Windowed { workers: 0 })
                .build()
                .unwrap_err(),
            Error::InvalidConfig("windowed execution needs at least one worker")
        );
        // Tier ladders are validated by the builder into a typed error.
        assert!(matches!(
            SystemConfig::builder()
                .tiers(vec![
                    TierSpec::new("dram", 0.03),
                    TierSpec::new("disk", 12.6)
                ])
                .build()
                .unwrap_err(),
            Error::InvalidTier(_)
        ));
        // Latencies must rise strictly along the ladder.
        assert!(matches!(
            SystemConfig::builder()
                .tiers(vec![
                    TierSpec::new("dram", 0.5),
                    TierSpec::new("remote", 0.5),
                    TierSpec::new("disk", 12.6),
                ])
                .build()
                .unwrap_err(),
            Error::InvalidTier(_)
        ));
        // Intermediate memory tiers need a nonzero pinned capacity.
        assert!(matches!(
            SystemConfig::builder()
                .tiers(vec![
                    TierSpec::new("dram", 0.03),
                    TierSpec::new("cxl", 0.25).frames(0),
                    TierSpec::new("remote", 0.5),
                    TierSpec::new("disk", 12.6),
                ])
                .build()
                .unwrap_err(),
            Error::InvalidTier(_)
        ));
        // A switched fabric with an explicit zero-capacity core is a config
        // error; `None` (ideal core) and positive capacities are fine.
        assert_eq!(
            SystemConfig::builder()
                .fabric(FabricSpec::Switched {
                    bisection_bits_per_sec: Some(0),
                })
                .build()
                .unwrap_err(),
            Error::InvalidConfig(
                "bisection bandwidth must be positive (omit it for an ideal switch core)"
            )
        );
        assert!(SystemConfig::builder()
            .fabric(FabricSpec::Switched {
                bisection_bits_per_sec: None,
            })
            .build()
            .is_ok());
        // Probe batches must be Sylvester Hadamard sizes.
        for bad in [0, 1, 6] {
            assert_eq!(
                SystemConfig::builder()
                    .probe(ProbeSpec::Batched { batch: bad })
                    .build()
                    .unwrap_err(),
                Error::InvalidConfig("probe batch size must be a power of two ≥ 2")
            );
        }
        assert!(SystemConfig::builder()
            .probe(ProbeSpec::Batched { batch: 4 })
            .build()
            .is_ok());
    }

    #[test]
    fn builder_accepts_extended_ladder_and_runs() {
        let config = SystemConfig::builder()
            .seed(5)
            .goal_ms(8.0)
            .db_pages(400)
            .buffer_pages_per_node(48)
            .goal_rate_per_ms(0.008)
            .warmup_intervals(1)
            .tiers(vec![
                TierSpec::new("dram", 0.03),
                TierSpec::new("cxl", 0.25)
                    .frames(48)
                    .bandwidth(2_000_000_000),
                TierSpec::new("remote", 0.5),
                TierSpec::new("disk", 12.6),
            ])
            .build()
            .expect("extended ladder config");
        assert!(config.cluster.tiers.is_extended());
        assert_eq!(config.cluster.local_frames_per_node(), 96);
        let mut sim = Simulation::new(config);
        sim.run_intervals(4);
        assert!(sim.plane().completions() > 0);
        let occ = sim.plane().tier_occupancy();
        assert_eq!(occ.len(), 2);
        assert_eq!(occ[0].0, "dram");
        assert_eq!(occ[1].0, "cxl");
        sim.plane().check_invariants();
    }

    #[test]
    fn placement_flows_into_cluster_params() {
        let spec = PlacementSpec::HotRing(dmm_cluster::HotRingSpec::default());
        let config = SystemConfig::builder()
            .placement(spec)
            .build()
            .expect("valid config");
        assert_eq!(config.cluster.placement, spec);
    }

    #[test]
    fn windowed_system_run_matches_sequential() {
        for placement in [
            PlacementSpec::RoundRobin,
            PlacementSpec::HotRing(dmm_cluster::HotRingSpec::default()),
        ] {
            let run = |exec: ExecMode| {
                let config = SystemConfig::builder()
                    .seed(9)
                    .nodes(8)
                    .goal_ms(8.0)
                    .db_pages(400)
                    .buffer_pages_per_node(64)
                    .goal_rate_per_ms(0.006)
                    .warmup_intervals(2)
                    .placement(placement)
                    .execution(exec)
                    .build()
                    .expect("valid test config");
                let mut sim = Simulation::new(config);
                sim.run_intervals(6);
                (
                    sim.plane().completions(),
                    sim.plane().network().data_bytes(),
                    sim.records(ClassId(1)).to_vec(),
                )
            };
            let seq = run(ExecMode::Sequential);
            for workers in [1, 2, 4] {
                let win = run(ExecMode::Windowed { workers });
                assert_eq!(
                    seq, win,
                    "windowed ({workers} workers) diverged from sequential ({placement:?})"
                );
            }
        }
    }

    #[test]
    fn intervals_advance_and_record() {
        let mut sim = Simulation::new(small_config(1));
        sim.run_intervals(5);
        assert_eq!(sim.intervals(), 5);
        let recs = sim.records(ClassId(1));
        assert_eq!(recs.len(), 5, "one check per interval");
        // Operations actually flowed.
        assert!(sim.plane().completions() > 50);
        assert!(recs.iter().any(|r| r.observed_ms.is_some()));
    }

    #[test]
    fn same_seed_is_bit_reproducible() {
        let run = |seed| {
            let mut sim = Simulation::new(small_config(seed));
            sim.run_intervals(6);
            (
                sim.plane().completions(),
                sim.plane().network().data_bytes(),
                sim.records(ClassId(1)).to_vec(),
            )
        };
        let (c1, b1, r1) = run(42);
        let (c2, b2, r2) = run(42);
        assert_eq!(c1, c2);
        assert_eq!(b1, b2);
        assert_eq!(r1.len(), r2.len());
        for (a, b) in r1.iter().zip(&r2) {
            assert_eq!(a, b);
        }
        let (c3, _, _) = run(43);
        assert_ne!(c1, c3, "different seed, different trace");
    }

    #[test]
    fn violated_goal_grows_dedicated_memory() {
        let mut cfg = small_config(7);
        // Very tight goal: the controller must dedicate memory.
        cfg.workload.classes[1].goal_ms = Some(2.0);
        let mut sim = Simulation::new(cfg);
        sim.run_intervals(12);
        let dedicated = sim.plane().total_dedicated_bytes(ClassId(1));
        assert!(
            dedicated > 0,
            "controller should have dedicated memory: {dedicated}"
        );
    }

    #[test]
    fn no_controller_never_dedicates() {
        let mut cfg = small_config(7);
        cfg.controller = ControllerKind::None;
        cfg.workload.classes[1].goal_ms = Some(1.0); // hopeless goal
        let mut sim = Simulation::new(cfg);
        sim.run_intervals(8);
        assert_eq!(sim.plane().total_dedicated_bytes(ClassId(1)), 0);
    }

    #[test]
    fn static_controller_dedicates_up_front() {
        let mut cfg = small_config(7);
        cfg.controller = ControllerKind::Static { fraction: 0.25 };
        let sim = Simulation::new(cfg);
        let expect = (0.25 * 96.0) as u64 * 3 * PAGE_BYTES;
        assert_eq!(sim.plane().total_dedicated_bytes(ClassId(1)), expect);
    }

    #[test]
    fn control_traffic_is_tiny() {
        let mut sim = Simulation::new(small_config(3));
        sim.run_intervals(10);
        let net = sim.plane().network();
        assert!(net.control_bytes() > 0, "reports flowed");
        assert!(
            net.control_fraction() < 0.01,
            "control fraction {}",
            net.control_fraction()
        );
    }

    #[test]
    fn goal_schedule_changes_goals() {
        let mut cfg = small_config(5);
        cfg.goal_range = Some(GoalRange::new(4.0, 40.0));
        // Upper-bound reading: any response time below the loose goal counts
        // as satisfied, so the schedule fires quickly.
        cfg.satisfaction = SatisfactionMode::UpperBound;
        cfg.workload.classes[1].goal_ms = Some(30.0);
        let mut sim = Simulation::new(cfg);
        sim.run_intervals(40);
        // At least one goal change should have happened over 40 intervals.
        let recs = sim.records(ClassId(1));
        let goals: std::collections::HashSet<u64> =
            recs.iter().map(|r| r.goal_ms.to_bits()).collect();
        assert!(goals.len() > 1, "goal never changed");
    }
}
