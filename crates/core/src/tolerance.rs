//! Adaptive goal tolerance (paper §5, phase (c)).
//!
//! "Due to statistical variance in the response time, we consider a goal to
//! be violated only if it differs more than a certain tolerance δ from the
//! given goal. To allow a workload dependent adaptation of δ we use the
//! method of \[5\]" — fragment fencing derives the tolerance from the observed
//! variance of the per-interval response time under the *current* goal. We
//! keep a Welford accumulator of interval means, reset on every goal change,
//! and set
//!
//! `δ = max(base_frac · goal, z₉₅ · stderr(interval means))`
//!
//! capped at `cap_frac · goal` so a wildly noisy start cannot declare
//! everything satisfied (the §7.2 discussion: with rapidly changing goals the
//! tolerance cannot calibrate, which is what produces the oscillation seen in
//! Fig. 2).

use dmm_sim::stats::{ConfidenceInterval, Welford, Z_95};

/// Workload-adaptive tolerance for one goal class.
#[derive(Debug, Clone)]
pub struct ToleranceEstimator {
    base_frac: f64,
    cap_frac: f64,
    window: Welford,
}

impl Default for ToleranceEstimator {
    fn default() -> Self {
        Self::new(0.15, 0.40)
    }
}

impl ToleranceEstimator {
    /// `base_frac`: minimum tolerance as a fraction of the goal;
    /// `cap_frac`: maximum, likewise.
    pub fn new(base_frac: f64, cap_frac: f64) -> Self {
        assert!(base_frac > 0.0 && cap_frac >= base_frac);
        ToleranceEstimator {
            base_frac,
            cap_frac,
            window: Welford::new(),
        }
    }

    /// Tolerance bands for quantile goals (base 20 %, cap 50 % of the
    /// goal). A per-interval quantile is a far noisier statistic than the
    /// interval mean — the p95 of a few hundred completions moves with the
    /// handful of slowest operations — so the violation band starts wider
    /// and is allowed to widen further before the cap, keeping the
    /// controller from thrashing on tail noise.
    pub fn for_quantile() -> Self {
        Self::new(0.20, 0.50)
    }

    /// Feed one observation-interval mean response time (ms).
    pub fn observe(&mut self, interval_mean_ms: f64) {
        self.window.push(interval_mean_ms);
    }

    /// Number of intervals observed under the current goal.
    pub fn observations(&self) -> u64 {
        self.window.count()
    }

    /// The goal changed: variance under the old goal is meaningless.
    pub fn reset(&mut self) {
        self.window = Welford::new();
    }

    /// Current tolerance δ in ms for the given goal.
    pub fn tolerance_ms(&self, goal_ms: f64) -> f64 {
        let base = self.base_frac * goal_ms;
        let cap = self.cap_frac * goal_ms;
        if self.window.count() < 2 {
            return base;
        }
        let ci = ConfidenceInterval::from_welford(&self.window, Z_95);
        ci.half_width.clamp(base, cap)
    }

    /// Is `observed` within tolerance of `goal`?
    pub fn satisfied(&self, observed_ms: f64, goal_ms: f64) -> bool {
        (observed_ms - goal_ms).abs() <= self.tolerance_ms(goal_ms)
    }

    /// Is the goal *violated from above* (too slow)? The distinction
    /// matters: too-fast only triggers memory release, too-slow triggers
    /// growth.
    pub fn too_slow(&self, observed_ms: f64, goal_ms: f64) -> bool {
        observed_ms > goal_ms + self.tolerance_ms(goal_ms)
    }

    /// Is the class so much faster than the goal that dedicated memory can
    /// be released for the no-goal class?
    ///
    /// Release uses a wider band than violation: growing is urgent (an SLA
    /// is being missed) while releasing is charity, and a controller that
    /// releases on marginal over-achievement nibbles memory away every few
    /// intervals and oscillates around tight goals. The class must run
    /// below ~70 % of the goal — clear, not marginal, over-achievement —
    /// before memory is handed back.
    pub fn too_fast(&self, observed_ms: f64, goal_ms: f64) -> bool {
        let slack = self.tolerance_ms(goal_ms).max(0.3 * goal_ms);
        observed_ms < goal_ms - slack
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_tolerance_before_data() {
        let t = ToleranceEstimator::default();
        assert!((t.tolerance_ms(10.0) - 1.5).abs() < 1e-12);
        assert!(t.satisfied(11.4, 10.0));
        assert!(!t.satisfied(11.6, 10.0));
        assert!(t.too_slow(11.6, 10.0));
        // Release needs clear over-achievement (below goal − max(δ, 30 %)),
        // not a marginal dip past the violation band.
        assert!(!t.too_fast(8.4, 10.0));
        assert!(t.too_fast(6.9, 10.0));
    }

    #[test]
    fn quantile_bands_are_wider() {
        let t = ToleranceEstimator::for_quantile();
        assert!((t.tolerance_ms(10.0) - 2.0).abs() < 1e-12);
        assert!(t.satisfied(11.9, 10.0));
        let mut t = ToleranceEstimator::for_quantile();
        for i in 0..20 {
            t.observe(if i % 2 == 0 { 2.0 } else { 18.0 });
        }
        assert!(t.tolerance_ms(10.0) <= 5.0, "capped at 50 %");
    }

    #[test]
    fn noisy_workload_widens_tolerance() {
        let mut t = ToleranceEstimator::default();
        for i in 0..20 {
            t.observe(if i % 2 == 0 { 4.0 } else { 16.0 });
        }
        let tol = t.tolerance_ms(10.0);
        assert!(tol > 1.5, "widened: {tol}");
        assert!(tol <= 4.0, "capped: {tol}");
    }

    #[test]
    fn quiet_workload_keeps_base() {
        let mut t = ToleranceEstimator::default();
        for _ in 0..20 {
            t.observe(10.0);
        }
        assert!((t.tolerance_ms(10.0) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn reset_forgets_variance() {
        let mut t = ToleranceEstimator::default();
        for i in 0..20 {
            t.observe(if i % 2 == 0 { 5.0 } else { 15.0 });
        }
        assert!(t.tolerance_ms(10.0) > 2.0);
        t.reset();
        assert_eq!(t.observations(), 0);
        assert!((t.tolerance_ms(10.0) - 1.5).abs() < 1e-12);
    }
}
