//! The class coordinator (paper §5, phases (b)–(d)).
//!
//! One coordinator exists per goal class, placed on some node (messages to
//! and from it cross the simulated LAN). It remembers the most recent report
//! from every class-k agent and every no-goal agent — the agents need not be
//! synchronous — computes the λ-weighted mean response time of Eq. 4, checks
//! it against the goal with the adaptive tolerance, and, on violation, runs
//! the optimization phase of its [`Strategy`]: the paper's hyperplane + LP
//! method, one of the fencing baselines, or nothing.
//!
//! During warm-up — fewer than `N+1` independent measure points — the
//! hyperplane strategy issues a deterministic probing sequence (base
//! fraction everywhere, then one perturbed node per step), each step chosen
//! so it extends the measure store's rank (§5(b): "we have to take care that
//! every new partitioning leads to a new linear independent measure point").

use dmm_buffer::ClassId;
use dmm_cluster::NodeId;
use dmm_obs::Histogram;
use dmm_sim::SimTime;
use dmm_workload::GoalMetric;

use crate::agent::AgentObservation;
use crate::approx::{fit_planes, Planes};
use crate::baselines::{ClassFencingState, FragmentFencingState};
use crate::measure::{MeasurePoint, MeasureStore};
use crate::optimize::{solve_partitioning, Objective, PartitionProblem};
use crate::probe::{apply_probe_delta, batched_probe_deltas};
use crate::tolerance::ToleranceEstimator;

/// Bytes per MB; allocations are granted in 4 KB pages.
pub const MB: f64 = 1024.0 * 1024.0;
/// Pages per MB.
pub const PAGES_PER_MB: f64 = 256.0;

/// How goal satisfaction is judged in the check phase.
///
/// The paper's convergence experiments (§7.1, Fig. 2) treat the goal as a
/// *target*: the system counts an interval as satisfied when the observed
/// response time is within the tolerance band around the goal, and releases
/// memory when the class runs faster than the goal. A production SLA reading
/// treats the goal as an *upper bound* only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SatisfactionMode {
    /// Satisfied iff `|RT − goal| ≤ δ` (the paper's experiments).
    #[default]
    TwoSided,
    /// Satisfied iff `RT ≤ goal + δ` (SLA reading).
    UpperBound,
}

/// The optimization strategy run on goal violation.
#[derive(Debug)]
pub enum Strategy {
    /// The paper's method: measure points → hyperplane → LP.
    Hyperplane {
        /// Phase-(b) point store.
        store: MeasureStore,
        /// LP objective (the paper uses [`Objective::MinNoGoalRt`]).
        objective: Objective,
        /// Warm-up probe cursor.
        probe_step: usize,
    },
    /// Fragment fencing \[5\]: response time assumed linear in buffer size.
    Fragment(FragmentFencingState),
    /// Class fencing \[6\]: response time linear in miss rate, miss rate
    /// extrapolated linearly in buffer size.
    ClassFencing(ClassFencingState),
    /// Never reallocates (static and no-partitioning baselines).
    Fixed,
}

/// Structured record of one optimization phase (§5(d)): which path produced
/// the new allocation and the model state behind it. Consumed by the trace
/// layer; carries no control-flow weight of its own.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OptimizeTrace {
    /// Path taken: `"lp"`, `"probe"`, `"fragment"`, or `"class_fencing"`.
    pub path: &'static str,
    /// Independent measure points available to the fit.
    pub points: usize,
    /// Fitted class-plane gradient `w` (LP path only).
    pub plane_w: Option<Vec<f64>>,
    /// Fitted class-plane intercept `c` (LP path only).
    pub plane_c: Option<f64>,
    /// Whether the LP found the goal attainable.
    pub goal_attainable: Option<bool>,
    /// LP-predicted class response time at the solution.
    pub predicted_class_ms: Option<f64>,
    /// Per-measure-point fit residuals (observed − plane-predicted class
    /// response time, ms) over the points the fit consumed, in store order.
    /// `None` when no fit ran.
    pub fit_residuals_ms: Option<Vec<f64>>,
    /// Root-mean-square of [`fit_residuals_ms`](Self::fit_residuals_ms).
    pub fit_rms_ms: Option<f64>,
    /// Why the LP path was skipped, when it was: `"rank_deficient"`,
    /// `"fit_failed"`, `"memory_does_not_help"`, or `"lp_infeasible"`.
    pub fallback: Option<&'static str>,
}

/// Result of one check phase.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckOutcome {
    /// λ-weighted mean class response time, if any agent has data.
    pub observed_class_ms: Option<f64>,
    /// Observed goal-quantile response time (ms), merged over the latest
    /// per-node histograms; `Some` only for quantile-goal classes with
    /// data. For those classes this — not the mean — is the statistic
    /// checked against the goal.
    pub observed_quantile_ms: Option<f64>,
    /// λ-weighted mean no-goal response time (last known).
    pub observed_nogoal_ms: f64,
    /// Whether the goal was satisfied (`None` = no data yet).
    pub satisfied: Option<bool>,
    /// New per-node allocation in MB, if the optimization phase decided to
    /// change the partitioning.
    pub new_alloc_mb: Option<Vec<f64>>,
    /// Adaptive tolerance δ (ms) in force during this check.
    pub tolerance_ms: f64,
    /// Whether the check fell in the settling window after an allocation
    /// change (no measure point recorded, no action taken).
    pub settling: bool,
    /// Whether workload-shift detection cleared the measure store this
    /// check.
    pub store_cleared: bool,
    /// Detail of the optimization phase, when one ran.
    pub optimize: Option<OptimizeTrace>,
    /// Realized LP prediction residual (observed − predicted class ms):
    /// present on the first non-settling check after an LP-issued
    /// allocation, measuring how well the fitted plane anticipated the
    /// outcome of its own action (controller explainability).
    pub prediction_residual_ms: Option<f64>,
}

/// Coordinator for one goal class.
#[derive(Debug)]
pub struct Coordinator {
    class: ClassId,
    home: NodeId,
    nodes: usize,
    goal_ms: f64,
    /// Which response-time statistic the goal constrains. With a quantile
    /// metric the whole measure → check → optimize loop runs on the merged
    /// per-interval histogram quantile instead of the λ-weighted mean: the
    /// tolerance adapts to the quantile's variance, the measure store pairs
    /// partitionings with observed quantiles, and the hyperplane is fitted
    /// through those quantiles.
    metric: GoalMetric,
    node_size_mb: f64,
    tol: ToleranceEstimator,
    latest_class: Vec<Option<AgentObservation>>,
    latest_nogoal: Vec<Option<AgentObservation>>,
    granted_mb: Vec<f64>,
    avail_mb: Vec<f64>,
    /// Liveness view: `live[i]` is false while node `i` is crashed. The
    /// optimization runs in the subspace of live nodes (dead columns carry
    /// no information) and dead nodes are never allocated to.
    live: Vec<bool>,
    last_nogoal_ms: f64,
    strategy: Strategy,
    satisfaction: SatisfactionMode,
    reallocation_penalty: f64,
    /// Minimum total dedicated memory (MB) the coordinator keeps for its
    /// class. Response time is only controllable through the dedicated
    /// pools; below a minimal pool the class lives off the shared no-goal
    /// buffer where more dedication can *slow it down* (it loses its shared
    /// share), so releases are clamped here. 0 disables the floor.
    release_floor_mb: f64,
    /// Total arrival rate (class + no-goal, ops/ms) embedded in the current
    /// measure points. A large deviation means the workload shifted and the
    /// stored response-time surface no longer holds: the store is cleared
    /// and re-probed (§1's "evolving workload characteristics").
    store_rate_signature: Option<f64>,
    /// EWMA-smoothed arrival-rate signature (raw per-interval rates are
    /// Poisson-noisy; the detector must not trip on sampling noise).
    smoothed_signature: Option<f64>,
    /// Per-node base the warm-up probe sequence perturbs around, captured
    /// *once* when a workload shift clears the measure store: re-probing
    /// then keeps the partitioning that was serving the class instead of
    /// resetting to the low start-up base. Anchoring on the live grant
    /// instead would ratchet toward the cap, because every probe step adds
    /// its perturbation on top of the previous step's allocation. `None`
    /// until a shift is detected (start-up probes use the classic low base).
    probe_anchor_mb: Option<Vec<f64>>,
    /// Settling checks remaining for the most recently issued allocation
    /// change: intervals whose measurements mix the old and new
    /// partitionings (the caches refill), so those checks neither record a
    /// measure point nor issue a new action. Large moves need two intervals
    /// to refill; small ones need one.
    transient: u8,
    checks: u64,
    optimizations: u64,
    /// LP-predicted class response time of the most recent LP-issued
    /// allocation, awaiting realization at the next non-settling check.
    pending_prediction: Option<f64>,
    /// EWMA (α = 0.3) of realized prediction residuals — a rolling gauge of
    /// how much the fitted surface can currently be trusted.
    residual_ewma_ms: Option<f64>,
    /// Most recent observed goal-quantile (ms), for gauges; `None` until a
    /// quantile-goal class produces data.
    last_quantile_ms: Option<f64>,
    /// Precomputed sign-orthogonal probe plan ([`crate::probe`]); `None`
    /// keeps the paper's sequential one-node-per-step prober.
    probe_plan: Option<Vec<Vec<f64>>>,
    /// Most recent successfully fitted full-topology surfaces — the donor
    /// for cross-scale warm starts ([`Coordinator::warm_start`]).
    last_fit: Option<Planes>,
}

impl Coordinator {
    /// New coordinator on `home` for `class`, with `nodes` nodes of
    /// `node_size_mb` MB buffer each.
    pub fn new(
        class: ClassId,
        home: NodeId,
        nodes: usize,
        node_size_mb: f64,
        goal_ms: f64,
        strategy: Strategy,
    ) -> Self {
        assert!(!class.is_no_goal(), "the no-goal class has no coordinator");
        assert!(goal_ms > 0.0 && node_size_mb > 0.0 && nodes > 0);
        Coordinator {
            class,
            home,
            nodes,
            goal_ms,
            metric: GoalMetric::Mean,
            node_size_mb,
            tol: ToleranceEstimator::default(),
            latest_class: vec![None; nodes],
            latest_nogoal: vec![None; nodes],
            granted_mb: vec![0.0; nodes],
            avail_mb: vec![node_size_mb; nodes],
            live: vec![true; nodes],
            last_nogoal_ms: 0.0,
            strategy,
            satisfaction: SatisfactionMode::default(),
            reallocation_penalty: 0.02,
            release_floor_mb: 0.0,
            store_rate_signature: None,
            smoothed_signature: None,
            probe_anchor_mb: None,
            // The very first interval measures a cold system that represents
            // no steady-state partitioning: skip it like any other transient.
            transient: 1,
            checks: 0,
            optimizations: 0,
            pending_prediction: None,
            residual_ewma_ms: None,
            last_quantile_ms: None,
            probe_plan: None,
            last_fit: None,
        }
    }

    /// Selects the response-time statistic the goal constrains (default:
    /// the paper's mean). Switching to a quantile swaps in the wider
    /// quantile tolerance bands ([`ToleranceEstimator::for_quantile`]) —
    /// per-interval quantiles are noisier than means, so the settling
    /// semantics get more slack before a violation is declared.
    pub fn set_goal_metric(&mut self, metric: GoalMetric) {
        metric.validate();
        self.metric = metric;
        if metric.is_quantile() {
            self.tol = ToleranceEstimator::for_quantile();
        }
    }

    /// The response-time statistic the goal constrains.
    pub fn goal_metric(&self) -> GoalMetric {
        self.metric
    }

    /// Most recent observed goal-quantile (ms), if any.
    pub fn last_quantile_ms(&self) -> Option<f64> {
        self.last_quantile_ms
    }

    /// Selects how satisfaction is judged (default: the paper's two-sided
    /// band).
    pub fn set_satisfaction_mode(&mut self, mode: SatisfactionMode) {
        self.satisfaction = mode;
    }

    /// Sets the LP's reallocation-stickiness penalty in ms/MB (0 disables).
    pub fn set_reallocation_penalty(&mut self, penalty: f64) {
        assert!(penalty >= 0.0);
        self.reallocation_penalty = penalty;
    }

    /// Sets the release floor in MB (see the field docs; 0 disables).
    pub fn set_release_floor(&mut self, floor_mb: f64) {
        assert!(floor_mb >= 0.0);
        self.release_floor_mb = floor_mb;
    }

    /// Switches warm-up probing from the paper's one-node-per-step sequence
    /// to sign-orthogonal batches of `batch` nodes per probe (see
    /// [`crate::probe`]). Every planned probe is guaranteed to extend the
    /// measure store's rank, so none of the scarce acted-on checks is wasted
    /// re-measuring a direction already in the span. Panics unless `batch`
    /// is a power of two ≥ 2 (`SystemConfig::build` validates upstream).
    pub fn set_probe_batch(&mut self, batch: usize) {
        self.probe_plan = Some(batched_probe_deltas(self.nodes, batch));
    }

    /// The most recent successfully fitted full-topology surfaces, if any
    /// (also set by [`Coordinator::warm_start`]) — the small-system donor
    /// for a cross-scale warm start.
    pub fn fitted_planes(&self) -> Option<&Planes> {
        self.last_fit.as_ref()
    }

    /// Seeds the measure store with `N + 1` synthetic on-plane points
    /// derived from `planes` — typically a small-system fit stretched by
    /// [`crate::approx::upsample_planes`] — so the hyperplane strategy
    /// starts at full rank and the LP can engage on the very first
    /// violation instead of spending ~`N` probe intervals learning the
    /// surface from scratch. The synthetic response times are the *raw*
    /// plane predictions (unclamped — clamping would bend the recorded
    /// surface away from the plane and corrupt the first fit); real
    /// measurements then blend in through the store's normal replacement
    /// and correct any residual model error. No-op for non-hyperplane
    /// strategies.
    pub fn warm_start(&mut self, planes: &Planes, at: SimTime) {
        assert_eq!(
            planes.class.w.len(),
            self.nodes,
            "warm-start planes must match the topology width"
        );
        let Strategy::Hyperplane { store, .. } = &mut self.strategy else {
            return;
        };
        store.clear();
        let low = 0.25 * self.node_size_mb;
        let base = vec![low; self.nodes];
        store.record(
            base.clone(),
            planes.predict_class_ms(&base),
            planes.predict_nogoal_ms(&base),
            at,
        );
        for i in 0..self.nodes {
            let mut x = base.clone();
            x[i] += 0.5 * self.node_size_mb;
            let (rt_k, rt_0) = (planes.predict_class_ms(&x), planes.predict_nogoal_ms(&x));
            store.record(x, rt_k, rt_0, at);
        }
        debug_assert!(store.has_full_rank());
        self.last_fit = Some(planes.clone());
    }

    /// The paper's strategy with default objective.
    pub fn hyperplane(
        class: ClassId,
        home: NodeId,
        nodes: usize,
        node_size_mb: f64,
        goal_ms: f64,
        objective: Objective,
    ) -> Self {
        Self::new(
            class,
            home,
            nodes,
            node_size_mb,
            goal_ms,
            Strategy::Hyperplane {
                store: MeasureStore::new(nodes),
                objective,
                probe_step: 0,
            },
        )
    }

    /// Class this coordinator manages.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// Node the coordinator runs on.
    pub fn home(&self) -> NodeId {
        self.home
    }

    /// Moves the coordinator to another node (§5: "even a migration of a
    /// coordinator from one node to another node is possible, as long as all
    /// corresponding agents are informed"). State travels with it; only the
    /// message endpoints change.
    pub fn migrate(&mut self, new_home: NodeId) {
        self.home = new_home;
    }

    /// The goal currently in force (ms).
    pub fn goal_ms(&self) -> f64 {
        self.goal_ms
    }

    /// Current tolerance δ (ms).
    pub fn tolerance_ms(&self) -> f64 {
        self.tol.tolerance_ms(self.goal_ms)
    }

    /// Number of check phases run.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Number of optimization phases run (violations acted upon).
    pub fn optimizations(&self) -> u64 {
        self.optimizations
    }

    /// Rolling EWMA of realized LP prediction residuals (ms), if any
    /// LP-issued allocation has been followed up yet.
    pub fn residual_ewma_ms(&self) -> Option<f64> {
        self.residual_ewma_ms
    }

    /// The coordinator's view of its granted allocation (MB per node).
    pub fn granted_mb(&self) -> &[f64] {
        &self.granted_mb
    }

    /// Installs a new response-time goal (dynamic goal adjustment). Resets
    /// the tolerance window; measure points stay valid (the response-time
    /// surface depends on the workload, not the goal).
    pub fn set_goal(&mut self, goal_ms: f64) {
        assert!(goal_ms > 0.0);
        self.goal_ms = goal_ms;
        self.tol.reset();
    }

    /// Marks `node` crashed: its observations are dropped, its grant and
    /// headroom go to zero, and the learned response-time surface is reset —
    /// the topology changed, so stored points (which mix in the dead node's
    /// memory) no longer describe the reachable surface. Idempotent.
    pub fn node_down(&mut self, node: NodeId) {
        let slot = node.index();
        assert!(slot < self.nodes);
        if !self.live[slot] {
            return;
        }
        self.live[slot] = false;
        self.latest_class[slot] = None;
        self.latest_nogoal[slot] = None;
        self.granted_mb[slot] = 0.0;
        self.avail_mb[slot] = 0.0;
        self.topology_changed();
    }

    /// Marks `node` live again after a restart (cold buffer: nothing
    /// granted, full headroom). The surface is re-learned over the restored
    /// topology. Idempotent.
    pub fn node_up(&mut self, node: NodeId) {
        let slot = node.index();
        assert!(slot < self.nodes);
        if self.live[slot] {
            return;
        }
        self.live[slot] = true;
        self.latest_class[slot] = None;
        self.latest_nogoal[slot] = None;
        self.granted_mb[slot] = 0.0;
        self.avail_mb[slot] = self.node_size_mb;
        self.topology_changed();
    }

    /// Number of nodes this coordinator currently believes are up.
    pub fn live_nodes(&self) -> usize {
        self.live.iter().filter(|&&l| l).count()
    }

    /// Reacts to a cluster membership change: the measure store is cleared
    /// (same mechanism as a workload shift — the old surface is stale), the
    /// full-rank requirement shrinks to `live + 1` (dead columns are frozen
    /// at zero, so `N + 1` affinely independent points no longer exist), and
    /// re-probing anchors on the surviving partitioning.
    fn topology_changed(&mut self) {
        let live = self.live_nodes();
        assert!(live > 0, "at least one node must survive");
        if let Strategy::Hyperplane {
            store, probe_step, ..
        } = &mut self.strategy
        {
            store.clear();
            store.set_rank_target((live < self.nodes).then_some(live + 1));
            *probe_step = 0;
        }
        self.tol.reset();
        self.store_rate_signature = None;
        self.smoothed_signature = None;
        self.probe_anchor_mb = Some(self.granted_mb.clone());
        self.transient = 2;
    }

    /// Phase (b): stores an agent report (class-k or no-goal agent).
    pub fn on_report(&mut self, obs: AgentObservation) {
        let slot = obs.node.index();
        assert!(slot < self.nodes);
        if !self.live[slot] {
            // A straggler report from a node this coordinator already
            // declared dead (e.g. delivered the instant of the crash).
            return;
        }
        if obs.class == self.class {
            self.granted_mb[slot] = obs.granted_pages as f64 / PAGES_PER_MB;
            self.avail_mb[slot] = obs.avail_pages as f64 / PAGES_PER_MB;
            self.latest_class[slot] = Some(obs);
        } else {
            debug_assert!(obs.class.is_no_goal(), "only no-goal crosses classes");
            self.latest_nogoal[slot] = Some(obs);
        }
    }

    /// Phase (e) feedback: a node granted (possibly less than) the requested
    /// allocation.
    pub fn on_granted(&mut self, node: NodeId, granted_pages: usize, avail_pages: usize) {
        self.granted_mb[node.index()] = granted_pages as f64 / PAGES_PER_MB;
        self.avail_mb[node.index()] = avail_pages as f64 / PAGES_PER_MB;
    }

    /// Phases (c)+(d): the check and, on violation, the optimization.
    pub fn check(&mut self, now: SimTime) -> CheckOutcome {
        self.checks += 1;
        let rt_class = weighted_rt(&self.latest_class);
        if let Some(rt0) = weighted_rt(&self.latest_nogoal) {
            self.last_nogoal_ms = rt0;
        }
        // For quantile goals: merge the latest per-node histograms (in node
        // order — merge is order-invariant anyway) and extract the goal
        // quantile. Mean-goal classes skip this entirely.
        let rt_quantile = self
            .metric
            .quantile()
            .and_then(|q| merged_quantile_ms(&self.latest_class, q));
        if rt_quantile.is_some() {
            self.last_quantile_ms = rt_quantile;
        }
        // The statistic the goal constrains — everything downstream
        // (tolerance, satisfaction, measure store, optimization) sees only
        // this value.
        let rt_goal_value = match self.metric {
            GoalMetric::Mean => rt_class,
            GoalMetric::Quantile { .. } => rt_quantile,
        };
        let Some(rt_k) = rt_goal_value else {
            return CheckOutcome {
                observed_class_ms: rt_class,
                observed_quantile_ms: rt_quantile,
                observed_nogoal_ms: self.last_nogoal_ms,
                satisfied: None,
                new_alloc_mb: None,
                tolerance_ms: self.tolerance_ms(),
                settling: self.transient > 0,
                store_cleared: false,
                optimize: None,
                prediction_residual_ms: None,
            };
        };

        let settling = self.transient > 0;
        self.transient = self.transient.saturating_sub(1);
        // Realize the residual of the most recent LP prediction at the first
        // non-settling check after its allocation took effect: by then the
        // caches have refilled and `rt_k` measures the partitioning the LP
        // actually produced.
        let mut prediction_residual_ms = None;
        if !settling {
            if let Some(pred) = self.pending_prediction.take() {
                let residual = rt_k - pred;
                prediction_residual_ms = Some(residual);
                self.residual_ewma_ms = Some(match self.residual_ewma_ms {
                    Some(prev) => prev + 0.3 * (residual - prev),
                    None => residual,
                });
            }
        }
        let mut store_cleared = false;
        if !settling {
            // Workload-shift detection: the fitted surface is conditional on
            // the arrival rates; a sustained >15 % change invalidates the
            // measure points. The raw per-interval rates are Poisson-noisy,
            // so the detector compares an EWMA-smoothed signature. Settling
            // checks are excluded — their reports can be partial.
            let raw: f64 = self
                .latest_class
                .iter()
                .chain(&self.latest_nogoal)
                .flatten()
                .map(|o| o.arrival_rate_per_ms)
                .sum();
            let signature = match self.smoothed_signature {
                Some(prev) => prev + 0.3 * (raw - prev),
                None => raw,
            };
            if raw > 0.0 {
                self.smoothed_signature = Some(signature);
            }
            if let Some(s0) = self.store_rate_signature {
                if (signature - s0).abs() > 0.15 * s0.max(1e-9) {
                    if let Strategy::Hyperplane { store, .. } = &mut self.strategy {
                        store.clear();
                    }
                    self.tol.reset();
                    self.store_rate_signature = Some(signature);
                    self.probe_anchor_mb = Some(self.granted_mb.clone());
                    store_cleared = true;
                }
            } else if signature > 0.0 {
                self.store_rate_signature = Some(signature);
            }
            self.tol.observe(rt_k);
            // Record the measure point before deciding: the check's data is
            // a measurement of the *current* partitioning. An interval that
            // straddled an allocation change measures neither the old nor
            // the new partitioning and is not recorded (§5(b) pairs each
            // point with one partitioning).
            if let Strategy::Hyperplane { store, .. } = &mut self.strategy {
                store.record(self.granted_mb.clone(), rt_k, self.last_nogoal_ms, now);
            }
        }
        // The coordinator *acts* when the class is too slow (grow) or when
        // it is too fast while holding dedicated memory — releasing it for
        // the no-goal class (the behaviour §2 describes for the fencing
        // methods) by steering toward the goal equality of the §4 LP.
        let satisfied = match self.satisfaction {
            SatisfactionMode::TwoSided => self.tol.satisfied(rt_k, self.goal_ms),
            SatisfactionMode::UpperBound => !self.tol.too_slow(rt_k, self.goal_ms),
        };
        let holds_memory = self.granted_mb.iter().sum::<f64>() > 1e-9;
        let too_slow = self.tol.too_slow(rt_k, self.goal_ms);
        let act =
            !settling && (too_slow || (self.tol.too_fast(rt_k, self.goal_ms) && holds_memory));
        let optimized = if act {
            self.optimizations += 1;
            self.optimize(rt_k, too_slow)
        } else {
            None
        };
        let (new_alloc, opt_trace) = match optimized {
            Some((alloc, trace)) => (Some(self.apply_floor(alloc)), Some(trace)),
            None => (None, None),
        };
        if let Some(trace) = &opt_trace {
            if trace.path == "lp" {
                self.pending_prediction = trace.predicted_class_ms;
            }
        }
        if let Some(alloc) = &new_alloc {
            // A change of at least one page somewhere disturbs the next
            // interval's measurements; a change of more than 1 MB total
            // takes the caches about two intervals to refill.
            let moved: f64 = alloc
                .iter()
                .zip(&self.granted_mb)
                .map(|(a, g)| (a - g).abs())
                .sum();
            if moved > 1.0 {
                self.transient = 2;
            } else if moved > 1.0 / PAGES_PER_MB {
                self.transient = 1;
            }
        }
        CheckOutcome {
            observed_class_ms: rt_class,
            observed_quantile_ms: rt_quantile,
            observed_nogoal_ms: self.last_nogoal_ms,
            satisfied: Some(satisfied),
            new_alloc_mb: new_alloc,
            tolerance_ms: self.tolerance_ms(),
            settling,
            store_cleared,
            optimize: opt_trace,
            prediction_residual_ms,
        }
    }

    fn apply_floor(&self, alloc: Vec<f64>) -> Vec<f64> {
        let total: f64 = alloc.iter().sum();
        if total + 1e-9 >= self.release_floor_mb {
            return alloc;
        }
        distribute_delta(&alloc, &self.avail_mb, self.release_floor_mb - total)
    }

    fn optimize(&mut self, rt_k: f64, too_slow: bool) -> Option<(Vec<f64>, OptimizeTrace)> {
        let goal = self.goal_ms;
        let node_size = self.node_size_mb;
        let granted = self.granted_mb.clone();
        let avail = self.avail_mb.clone();
        let penalty = self.reallocation_penalty;
        let miss_rate = aggregate_miss_rate(&self.latest_class);
        let anchor = self.probe_anchor_mb.clone();
        let nodes = self.nodes;
        // Indices of live nodes: with a degraded topology the fit and the
        // LP run in the surviving subspace (dead columns are identically
        // zero and carry no information; keeping them would make the fit
        // singular), and the solution is expanded back with zeros.
        let live_idx: Vec<usize> = (0..nodes).filter(|&i| self.live[i]).collect();
        let degraded = live_idx.len() < nodes;
        let plan = self.probe_plan.as_deref();
        match &mut self.strategy {
            Strategy::Hyperplane {
                store,
                objective,
                probe_step,
            } => {
                let mut trace = OptimizeTrace {
                    path: "probe",
                    ..OptimizeTrace::default()
                };
                if store.has_full_rank() {
                    let points = store.selected_points();
                    trace.points = points.len();
                    let projected: Vec<MeasurePoint>;
                    let fit_input: Vec<&MeasurePoint>;
                    let (avail_p, granted_p): (Vec<f64>, Vec<f64>);
                    if degraded {
                        projected = points
                            .iter()
                            .map(|p| MeasurePoint {
                                alloc_mb: live_idx.iter().map(|&i| p.alloc_mb[i]).collect(),
                                rt_class_ms: p.rt_class_ms,
                                rt_nogoal_ms: p.rt_nogoal_ms,
                                at: p.at,
                            })
                            .collect();
                        fit_input = projected.iter().collect();
                        avail_p = live_idx.iter().map(|&i| avail[i]).collect();
                        granted_p = live_idx.iter().map(|&i| granted[i]).collect();
                    } else {
                        fit_input = points;
                        avail_p = avail.clone();
                        granted_p = granted.clone();
                    }
                    match fit_planes(&fit_input) {
                        Ok(planes) => {
                            // Per-point fit residuals: how well the plane
                            // explains the very points it was fitted to.
                            // Exported on the optimize trace record so a
                            // noisy or stale surface is visible from the
                            // outside.
                            let resid: Vec<f64> = fit_input
                                .iter()
                                .map(|p| p.rt_class_ms - planes.predict_class_ms(&p.alloc_mb))
                                .collect();
                            let rms = (resid.iter().map(|r| r * r).sum::<f64>()
                                / resid.len() as f64)
                                .sqrt();
                            trace.fit_residuals_ms = Some(resid);
                            trace.fit_rms_ms = Some(rms);
                            if !degraded {
                                // Subspace fits are not retained: a donor
                                // plane must span the full topology.
                                self.last_fit = Some(planes.clone());
                            }
                            if planes.class_memory_helps() {
                                let problem = PartitionProblem {
                                    planes: &planes,
                                    goal_ms: goal,
                                    avail_mb: &avail_p,
                                    current_mb: &granted_p,
                                    reallocation_penalty: penalty,
                                    objective: *objective,
                                };
                                match solve_partitioning(&problem) {
                                    Ok(sol) => {
                                        trace.path = "lp";
                                        trace.plane_w = Some(expand_to_topology(
                                            planes.class.w.clone(),
                                            &live_idx,
                                            nodes,
                                        ));
                                        trace.plane_c = Some(planes.class.c);
                                        trace.goal_attainable = Some(sol.goal_attainable);
                                        trace.predicted_class_ms = Some(sol.predicted_class_ms);
                                        let alloc = release_trust_region(sol.alloc_mb, &granted_p);
                                        let alloc =
                                            monotone_guard(alloc, &granted_p, &avail_p, too_slow);
                                        let alloc = expand_to_topology(alloc, &live_idx, nodes);
                                        return Some((alloc, trace));
                                    }
                                    Err(_) => trace.fallback = Some("lp_infeasible"),
                                }
                            } else {
                                trace.fallback = Some("memory_does_not_help");
                            }
                        }
                        Err(_) => trace.fallback = Some("fit_failed"),
                    }
                } else {
                    trace.fallback = Some("rank_deficient");
                }
                let probe = match plan {
                    Some(p) => next_batched(
                        store,
                        probe_step,
                        p,
                        node_size,
                        anchor.as_deref(),
                        &granted,
                        &avail,
                    ),
                    None => next_probe(
                        store,
                        probe_step,
                        node_size,
                        anchor.as_deref(),
                        &granted,
                        &avail,
                    ),
                };
                Some((probe, trace))
            }
            Strategy::Fragment(state) => state
                .suggest(goal, rt_k, &granted, &avail, node_size)
                .map(|alloc| {
                    (
                        alloc,
                        OptimizeTrace {
                            path: "fragment",
                            ..OptimizeTrace::default()
                        },
                    )
                }),
            Strategy::ClassFencing(state) => state
                .suggest(goal, rt_k, miss_rate, &granted, &avail, node_size)
                .map(|alloc| {
                    (
                        alloc,
                        OptimizeTrace {
                            path: "class_fencing",
                            ..OptimizeTrace::default()
                        },
                    )
                }),
            Strategy::Fixed => None,
        }
    }
}

/// Direction guard on the LP result: under the §3 monotonicity assumption a
/// too-slow class can only be helped by *more* total dedicated memory and a
/// too-fast one by *less*. An LP solution moving the total the wrong way
/// exposes a noise-corrupted plane; rather than follow it, take a
/// conservative step in the known-correct direction (grow by half the
/// remaining headroom, shrink by a quarter), preserving the per-node shape
/// where possible.
fn monotone_guard(lp_alloc: Vec<f64>, current: &[f64], avail: &[f64], too_slow: bool) -> Vec<f64> {
    let cur_total: f64 = current.iter().sum();
    let new_total: f64 = lp_alloc.iter().sum();
    let eps = 1e-6;
    if too_slow && new_total < cur_total + eps {
        let headroom: f64 = avail
            .iter()
            .zip(current)
            .map(|(a, c)| (a - c).max(0.0))
            .sum();
        let grow = (0.5 * headroom).max((0.25 * cur_total).min(headroom));
        return distribute_delta(current, avail, grow);
    }
    if !too_slow && new_total > cur_total - eps {
        return distribute_delta(current, avail, -0.15 * cur_total);
    }
    lp_alloc
}

/// Adds `delta` MB (possibly negative) to `current`, spread equally over the
/// nodes that have headroom (growing) or allocation (shrinking), waterfilled
/// against the per-node bounds.
fn distribute_delta(current: &[f64], avail: &[f64], delta: f64) -> Vec<f64> {
    let mut alloc = current.to_vec();
    let mut remaining = delta.abs();
    for _ in 0..current.len() {
        if remaining <= 1e-12 {
            break;
        }
        let open: Vec<usize> = (0..alloc.len())
            .filter(|&i| {
                if delta > 0.0 {
                    alloc[i] < avail[i] - 1e-12
                } else {
                    alloc[i] > 1e-12
                }
            })
            .collect();
        if open.is_empty() {
            break;
        }
        let share = remaining / open.len() as f64;
        for &i in &open {
            let step = if delta > 0.0 {
                share.min(avail[i] - alloc[i])
            } else {
                share.min(alloc[i])
            };
            alloc[i] += step * delta.signum();
            remaining -= step;
        }
    }
    alloc
}

/// Trust region on memory release: growing dedicated memory is urgent (an
/// SLA is being missed) and may jump, but releasing it is charity for the
/// no-goal class — and the linear plane extrapolates poorly far below the
/// operating point on a convex response-time curve. Release at most 15 %
/// per step: with the two-consecutive-checks release hysteresis this bounds
/// the grow/release limit-cycle amplitude around tight goals well below the
/// memory difference that separates neighbouring goal levels.
fn release_trust_region(lp_alloc: Vec<f64>, current: &[f64]) -> Vec<f64> {
    let cur_total: f64 = current.iter().sum();
    let new_total: f64 = lp_alloc.iter().sum();
    let floor = 0.85 * cur_total;
    if new_total >= floor || cur_total <= 0.0 {
        return lp_alloc;
    }
    // Blend toward the current allocation until the total reaches the floor.
    let lambda = (floor - new_total) / (cur_total - new_total);
    lp_alloc
        .iter()
        .zip(current)
        .map(|(x, c)| x + lambda * (c - x))
        .collect()
}

/// λ-weighted mean response time over the latest per-node observations
/// (Eq. 4's weighting), skipping nodes without data.
fn weighted_rt(latest: &[Option<AgentObservation>]) -> Option<f64> {
    let mut num = 0.0;
    let mut den = 0.0;
    for obs in latest.iter().flatten() {
        if let Some(rt) = obs.mean_rt_ms {
            let w = obs.arrival_rate_per_ms.max(1e-12);
            num += w * rt;
            den += w;
        }
    }
    if den > 0.0 {
        Some(num / den)
    } else {
        None
    }
}

/// Merges the latest per-node response-time histograms and extracts the
/// `q`-quantile in milliseconds. `None` if no node has histogram data.
/// Histogram merge is associative and commutative, so the node-order fold
/// here yields the same quantile any other merge order would — the
/// thread-invariance of tail metrics rests on exactly this property.
fn merged_quantile_ms(latest: &[Option<AgentObservation>], q: f64) -> Option<f64> {
    let mut merged: Option<Histogram> = None;
    for obs in latest.iter().flatten() {
        if let Some(h) = &obs.rt_hist {
            if h.count() == 0 {
                continue;
            }
            match &mut merged {
                Some(m) => m.merge(h),
                None => merged = Some(h.clone()),
            }
        }
    }
    merged.and_then(|m| m.quantile(q)).map(|ns| ns as f64 / 1e6)
}

/// System-wide miss rate of the class's pools, if any accesses occurred.
fn aggregate_miss_rate(latest: &[Option<AgentObservation>]) -> Option<f64> {
    let mut acc = 0u64;
    let mut hits = 0u64;
    for obs in latest.iter().flatten() {
        acc += obs.pool_accesses;
        hits += obs.pool_hits;
    }
    if acc == 0 {
        None
    } else {
        Some(1.0 - hits as f64 / acc as f64)
    }
}

/// Warm-up probing (§5(b)): a base allocation, then one perturbed node per
/// step; steps that would not extend the measure store's rank are skipped,
/// and once rank is complete (but the fit still failed) the current
/// allocation is perturbed instead.
///
/// At start-up (`anchor` is `None`) the base is the classic low quarter-node
/// fraction. After a workload-shift store clear the base is the allocation
/// captured at clear time, so re-learning the response-time surface does not
/// destroy a working partitioning in the meantime. The anchor is a fixed
/// snapshot rather than the live grant: probe steps stack their perturbation
/// on the base, and a live anchor would absorb each step's perturbation and
/// ratchet the allocation toward the cap.
fn next_probe(
    store: &MeasureStore,
    probe_step: &mut usize,
    node_size_mb: f64,
    anchor: Option<&[f64]>,
    granted: &[f64],
    avail: &[f64],
) -> Vec<f64> {
    let nodes = granted.len();
    let low = 0.25 * node_size_mb;
    let base: Vec<f64> = match anchor {
        Some(a) => a.iter().map(|&g| g.max(low)).collect(),
        None => vec![low; nodes],
    };
    for _ in 0..=nodes {
        let step = *probe_step % (nodes + 1);
        *probe_step += 1;
        let mut alloc = base.clone();
        if step > 0 {
            // A large perturbation: the response-time difference it causes
            // must stand clear of per-interval measurement noise, or the
            // fitted gradients are meaningless.
            alloc[step - 1] += 0.5 * node_size_mb;
        }
        for (a, &cap) in alloc.iter_mut().zip(avail) {
            *a = a.min(cap);
        }
        if store.would_extend_rank(&alloc) {
            return alloc;
        }
    }
    // Rank is complete but the optimization could not use it (degenerate
    // fit): nudge one node to produce fresh data. Nodes without headroom
    // (crashed: avail 0) are skipped — a nudge there changes nothing.
    let mut alloc = granted.to_vec();
    for _ in 0..nodes {
        let i = *probe_step % nodes;
        *probe_step += 1;
        if avail[i] <= 1e-9 {
            continue;
        }
        alloc[i] = if alloc[i] + 0.3 * node_size_mb <= avail[i] {
            alloc[i] + 0.3 * node_size_mb
        } else {
            (alloc[i] - 0.3 * node_size_mb).max(0.0)
        };
        break;
    }
    alloc
}

/// Batched warm-up probing: walks the precomputed sign-orthogonal plan
/// ([`batched_probe_deltas`]) instead of perturbing one node per step. The
/// anchor-or-low base rule matches [`next_probe`]; the probe magnitude is
/// `0.25 · node_size`, which the start-up base of `0.25 · node_size` per
/// node can always absorb downward, so ±1 plan entries never clamp at zero.
/// Rows that fail the rank gate anyway (clamping against per-node caps, a
/// degraded topology freezing columns) are skipped, and when the whole plan
/// is exhausted the sequential prober takes over as the safety net.
fn next_batched(
    store: &MeasureStore,
    probe_step: &mut usize,
    plan: &[Vec<f64>],
    node_size_mb: f64,
    anchor: Option<&[f64]>,
    granted: &[f64],
    avail: &[f64],
) -> Vec<f64> {
    let nodes = granted.len();
    let low = 0.25 * node_size_mb;
    let base: Vec<f64> = match anchor {
        Some(a) => a.iter().map(|&g| g.max(low)).collect(),
        None => vec![low; nodes],
    };
    // The unperturbed base is the plan's affine origin — measure it first.
    if store.would_extend_rank(&base) {
        let mut alloc = base;
        for (a, &cap) in alloc.iter_mut().zip(avail) {
            *a = a.min(cap);
        }
        return alloc;
    }
    let scale = 0.25 * node_size_mb;
    for _ in 0..plan.len() {
        let row = &plan[*probe_step % plan.len()];
        *probe_step += 1;
        let alloc = apply_probe_delta(&base, row, scale, avail);
        if store.would_extend_rank(&alloc) {
            return alloc;
        }
    }
    next_probe(store, probe_step, node_size_mb, anchor, granted, avail)
}

/// Expands a live-subspace vector back to full topology width, zero at the
/// dead indices. Identity when nothing is down.
fn expand_to_topology(reduced: Vec<f64>, live_idx: &[usize], nodes: usize) -> Vec<f64> {
    if reduced.len() == nodes {
        return reduced;
    }
    let mut full = vec![0.0; nodes];
    for (v, &i) in reduced.iter().zip(live_idx) {
        full[i] = *v;
    }
    full
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(node: u16, class: u16, rt: Option<f64>, rate: f64) -> AgentObservation {
        AgentObservation {
            node: NodeId(node),
            class: ClassId(class),
            mean_rt_ms: rt,
            rt_hist: None,
            completions: rt.map_or(0, |_| 10),
            arrival_rate_per_ms: rate,
            pool_accesses: 100,
            pool_hits: 60,
            granted_pages: 0,
            avail_pages: 512,
        }
    }

    fn coordinator(goal: f64) -> Coordinator {
        Coordinator::hyperplane(ClassId(1), NodeId(0), 3, 2.0, goal, Objective::MinNoGoalRt)
    }

    #[test]
    fn no_data_no_action() {
        let mut c = coordinator(5.0);
        let out = c.check(SimTime::ZERO);
        assert_eq!(out.satisfied, None);
        assert_eq!(out.new_alloc_mb, None);
    }

    #[test]
    fn weighted_mean_uses_arrival_rates() {
        let mut c = coordinator(5.0);
        c.on_report(obs(0, 1, Some(10.0), 0.03));
        c.on_report(obs(1, 1, Some(4.0), 0.01));
        // Node 2 has no data: skipped.
        let out = c.check(SimTime::ZERO);
        let expect = (0.03 * 10.0 + 0.01 * 4.0) / 0.04;
        assert!((out.observed_class_ms.expect("data") - expect).abs() < 1e-9);
    }

    #[test]
    fn satisfied_goal_takes_no_action() {
        let mut c = coordinator(10.0);
        for n in 0..3 {
            c.on_report(obs(n, 1, Some(10.2), 0.02));
        }
        let out = c.check(SimTime::ZERO);
        assert_eq!(out.satisfied, Some(true));
        assert!(out.new_alloc_mb.is_none());
        assert_eq!(c.optimizations(), 0);
    }

    #[test]
    fn violation_triggers_probing_until_full_rank() {
        let mut c = coordinator(2.0);
        // The first check observes the cold system and only settles.
        for n in 0..3 {
            c.on_report(obs(n, 1, Some(9.0), 0.02));
        }
        assert!(c.check(SimTime::ZERO).new_alloc_mb.is_none());
        let mut seen = Vec::new();
        // Keep reporting a violating RT; coordinator probes a new
        // partitioning each interval.
        for i in 1..5u64 {
            for n in 0..3 {
                c.on_report(obs(n, 1, Some(9.0 + i as f64), 0.02));
            }
            let out = c.check(SimTime::from_nanos(i * 10_000_000_000));
            let alloc = out.new_alloc_mb.expect("violated goal must act");
            seen.push(alloc.clone());
            // Pretend grants succeeded exactly.
            for n in 0..3 {
                c.on_granted(NodeId(n), (alloc[n as usize] * PAGES_PER_MB) as usize, 512);
            }
            // The settling checks after each change take no action.
            for j in 1..=2 {
                let settle = c.check(SimTime::from_nanos(i * 10_000_000_000 + j * 2_000_000_000));
                assert!(settle.new_alloc_mb.is_none(), "settling check must wait");
            }
        }
        // The four probe allocations must be pairwise distinct.
        for i in 0..seen.len() {
            for j in i + 1..seen.len() {
                assert_ne!(seen[i], seen[j], "probes must differ");
            }
        }
    }

    #[test]
    fn full_rank_produces_lp_solution() {
        let mut c = coordinator(4.0);
        for n in 0..3 {
            c.on_report(obs(n, 1, Some(10.0), 0.02));
        }
        assert!(
            c.check(SimTime::from_nanos(1)).new_alloc_mb.is_none(),
            "cold settle"
        );
        // Hand-feed 4 independent measure points through the public API:
        // each round: grant an allocation, report RTs consistent with
        // RT = 10 − 2·Σx plus node weighting, check.
        let allocs = [
            vec![0.5, 0.5, 0.5],
            vec![1.0, 0.5, 0.5],
            vec![0.5, 1.0, 0.5],
            vec![0.5, 0.5, 1.0],
        ];
        let rt = |a: &[f64]| 10.0 - 2.0 * a.iter().sum::<f64>();
        let mut t = 0u64;
        let mut check = |c: &mut Coordinator| {
            t += 5_000_000_000;
            c.check(SimTime::from_nanos(t))
        };
        let mut last = None;
        for a in allocs.iter() {
            for n in 0..3 {
                c.on_granted(NodeId(n), (a[n as usize] * PAGES_PER_MB) as usize, 512);
                let mut o = obs(n, 1, Some(rt(a)), 0.02);
                o.granted_pages = (a[n as usize] * PAGES_PER_MB) as usize;
                c.on_report(o);
            }
            // Also feed no-goal data so the objective has a plane.
            for n in 0..3 {
                c.on_report(obs(n, 0, Some(3.0 + a.iter().sum::<f64>()), 0.02));
            }
            // Run checks until one acts (settling checks defer).
            last = None;
            for _ in 0..3 {
                let out = check(&mut c);
                if out.new_alloc_mb.is_some() {
                    last = out.new_alloc_mb;
                    break;
                }
            }
        }
        // Full rank now: the LP should land on Σx = 3 (RT 4.0).
        let alloc = last.expect("still violated");
        let total: f64 = alloc.iter().sum();
        assert!(
            (total - 3.0).abs() < 0.05,
            "LP should meet the goal: Σ={total} alloc={alloc:?}"
        );
    }

    #[test]
    fn quantile_metric_drives_the_check_off_the_merged_histogram() {
        let mut c = coordinator(10.0);
        c.set_goal_metric(GoalMetric::Quantile { q: 0.95 });
        // Two nodes with fast means but a heavy tail on node 1: the p95
        // violates the 10 ms goal even though the mean is comfortably under.
        for n in 0..3u16 {
            let mut o = obs(n, 1, Some(4.0), 0.02);
            let mut h = crate::agent::rt_histogram();
            for _ in 0..90 {
                h.record(3_000_000); // 3 ms
            }
            for _ in 0..10 {
                h.record(40_000_000); // 40 ms tail — more than 5 % of mass
            }
            o.rt_hist = Some(h);
            c.on_report(o);
        }
        let settle = c.check(SimTime::ZERO); // cold settle
        assert!(settle.settling);
        let out = c.check(SimTime::from_nanos(5_000_000_000));
        let p95 = out.observed_quantile_ms.expect("quantile observed");
        assert!(p95 > 10.0, "tail is over goal: {p95}");
        assert!((out.observed_class_ms.unwrap() - 4.0).abs() < 1e-9);
        assert_eq!(out.satisfied, Some(false), "p95 violation despite mean");
        assert!(out.new_alloc_mb.is_some(), "quantile violation must act");
        assert_eq!(c.last_quantile_ms(), Some(p95));
    }

    #[test]
    fn mean_metric_ignores_histograms() {
        let mut c = coordinator(10.0);
        for n in 0..3u16 {
            let mut o = obs(n, 1, Some(10.0), 0.02);
            let mut h = crate::agent::rt_histogram();
            h.record(400_000_000); // would violate wildly if consulted
            o.rt_hist = Some(h);
            c.on_report(o);
        }
        c.check(SimTime::ZERO);
        let out = c.check(SimTime::from_nanos(5_000_000_000));
        assert_eq!(out.observed_quantile_ms, None);
        assert_eq!(out.satisfied, Some(true));
    }

    #[test]
    fn goal_change_resets_tolerance() {
        let mut c = coordinator(5.0);
        for n in 0..3 {
            c.on_report(obs(n, 1, Some(5.0), 0.02));
        }
        c.check(SimTime::ZERO); // settling check (cold start)
        c.check(SimTime::from_nanos(5_000_000_000));
        assert!(c.tol.observations() > 0);
        c.set_goal(3.0);
        assert_eq!(c.goal_ms(), 3.0);
        assert_eq!(c.tol.observations(), 0);
    }

    #[test]
    fn fixed_strategy_never_acts() {
        let mut c = Coordinator::new(ClassId(1), NodeId(0), 2, 2.0, 1.0, Strategy::Fixed);
        for n in 0..2 {
            c.on_report(obs(n, 1, Some(50.0), 0.02));
        }
        let out = c.check(SimTime::ZERO);
        assert_eq!(out.satisfied, Some(false));
        assert!(out.new_alloc_mb.is_none());
    }

    #[test]
    fn node_down_clears_view_and_ignores_stragglers() {
        let mut c = coordinator(5.0);
        for n in 0..3 {
            c.on_report(obs(n, 1, Some(9.0), 0.02));
            c.on_granted(NodeId(n), 256, 512);
        }
        c.node_down(NodeId(2));
        assert_eq!(c.live_nodes(), 2);
        assert_eq!(c.granted_mb()[2], 0.0);
        // A straggler report from the dead node must not resurrect it.
        c.on_report(obs(2, 1, Some(9.0), 0.02));
        assert_eq!(c.granted_mb()[2], 0.0);
        c.node_down(NodeId(2)); // idempotent
        assert_eq!(c.live_nodes(), 2);
        c.node_up(NodeId(2));
        assert_eq!(c.live_nodes(), 3);
        assert_eq!(c.granted_mb()[2], 0.0, "cold rejoin: nothing granted");
    }

    #[test]
    fn degraded_topology_reaches_reduced_rank_and_solves_on_survivors() {
        let mut c = coordinator(4.0);
        c.node_down(NodeId(2));
        // Feed measure points that only span the two survivors; rank target
        // is now 2+1, so the LP must engage without node 2's axis. Four
        // distinct allocations cycled at a period coprime to the settling
        // cadence, so successive recorded points differ.
        let allocs = [
            vec![0.5, 0.5, 0.0],
            vec![1.0, 0.5, 0.0],
            vec![0.5, 1.0, 0.0],
            vec![1.0, 1.0, 0.0],
        ];
        let rt = |a: &[f64]| 10.0 - 3.0 * a.iter().sum::<f64>();
        let mut t = 0u64;
        let mut last = None;
        for a in allocs.iter().cycle().take(16) {
            for n in 0..2 {
                c.on_granted(NodeId(n), (a[n as usize] * PAGES_PER_MB) as usize, 512);
                let mut o = obs(n, 1, Some(rt(a)), 0.02);
                o.granted_pages = (a[n as usize] * PAGES_PER_MB) as usize;
                c.on_report(o);
                c.on_report(obs(n, 0, Some(3.0), 0.02));
            }
            t += 5_000_000_000;
            let out = c.check(SimTime::from_nanos(t));
            if let Some(alloc) = out.new_alloc_mb {
                assert_eq!(alloc.len(), 3);
                assert_eq!(alloc[2], 0.0, "dead node must get nothing");
                if out.optimize.as_ref().is_some_and(|o| o.path == "lp") {
                    last = Some(alloc);
                }
            }
        }
        // RT = 10 − 3·Σx = 4 ⇒ Σx = 2 over the survivors.
        let alloc = last.expect("LP must engage at reduced rank");
        let total: f64 = alloc.iter().sum();
        assert!((total - 2.0).abs() < 0.1, "Σ={total} alloc={alloc:?}");
    }

    #[test]
    fn batched_probing_extends_rank_every_probe() {
        let nodes = 4;
        let mut store = MeasureStore::new(nodes);
        let plan = batched_probe_deltas(nodes, 2);
        let mut step = 0;
        let granted = vec![0.0; nodes];
        let avail = vec![2.0; nodes];
        // Anchor + the 4 plan rows: full rank in exactly N+1 probes, each
        // one pre-validated by the rank gate.
        for i in 0..=nodes {
            let alloc = next_batched(&store, &mut step, &plan, 2.0, None, &granted, &avail);
            assert!(store.would_extend_rank(&alloc), "probe {i} wasted");
            store.record(alloc, 10.0 - i as f64, 3.0, SimTime::ZERO);
        }
        assert!(store.has_full_rank());
    }

    #[test]
    fn warm_start_seeds_full_rank_and_retains_the_donor() {
        use dmm_linalg::Hyperplane;
        let mut c = coordinator(5.0);
        let planes = Planes {
            class: Hyperplane {
                w: vec![-2.0, -2.0, -2.0],
                c: 18.0,
            },
            nogoal: Hyperplane {
                w: vec![0.5, 0.5, 0.5],
                c: 3.0,
            },
        };
        c.warm_start(&planes, SimTime::ZERO);
        let donor = c.fitted_planes().expect("donor retained");
        assert_eq!(donor.class.w, vec![-2.0, -2.0, -2.0]);
        let Strategy::Hyperplane { store, .. } = &c.strategy else {
            panic!("hyperplane strategy");
        };
        assert!(store.has_full_rank(), "warm start must reach full rank");
        // The seeded points lie exactly on the donor plane, so the first
        // real fit reproduces it.
        let refit = fit_planes(&store.fit_points()).expect("fit");
        for (w, expect) in refit.class.w.iter().zip(&planes.class.w) {
            assert!((w - expect).abs() < 1e-6);
        }
        assert!((refit.class.c - planes.class.c).abs() < 1e-6);
    }
}
