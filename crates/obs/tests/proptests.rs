//! Seeded property tests for the metrics substrate: histogram merge is
//! associative and commutative, counters are monotone, and a populated
//! [`MetricsSnapshot`] round-trips through its JSON encoding byte-for-byte.
//!
//! dmm-obs sits below dmm-sim in the dependency graph, so the generator is
//! a local SplitMix64 rather than `dmm_sim::SimRng`.

use dmm_obs::{Counter, Histogram, MetricsSnapshot};

/// SplitMix64 — enough randomness for input generation, no dependencies.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A histogram over shared bounds filled with random values (occasionally
/// far beyond the last bound, to exercise the overflow bucket).
fn random_hist(rng: &mut Rng) -> Histogram {
    let mut h = Histogram::exponential(1_000, 12);
    for _ in 0..rng.below(200) {
        let v = if rng.below(10) == 0 {
            rng.below(u64::MAX / 2)
        } else {
            rng.below(5_000_000)
        };
        h.record(v);
    }
    h
}

fn assert_hist_eq(a: &Histogram, b: &Histogram, ctx: &str) {
    assert_eq!(a.bounds(), b.bounds(), "{ctx}: bounds");
    assert_eq!(a.counts(), b.counts(), "{ctx}: counts");
    assert_eq!(a.count(), b.count(), "{ctx}: count");
    assert_eq!(a.total(), b.total(), "{ctx}: total");
}

#[test]
fn histogram_merge_is_commutative() {
    for seed in 0..64u64 {
        let mut rng = Rng(seed);
        let a = random_hist(&mut rng);
        let b = random_hist(&mut rng);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_hist_eq(&ab, &ba, &format!("seed {seed}"));
    }
}

#[test]
fn histogram_merge_is_associative() {
    for seed in 100..164u64 {
        let mut rng = Rng(seed);
        let a = random_hist(&mut rng);
        let b = random_hist(&mut rng);
        let c = random_hist(&mut rng);
        // (a ∪ b) ∪ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ∪ (b ∪ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_hist_eq(&left, &right, &format!("seed {seed}"));
    }
}

#[test]
fn histogram_merge_preserves_mass() {
    for seed in 200..232u64 {
        let mut rng = Rng(seed);
        let a = random_hist(&mut rng);
        let b = random_hist(&mut rng);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.count(), a.count() + b.count(), "seed {seed}");
        assert_eq!(
            m.total(),
            a.total().saturating_add(b.total()),
            "seed {seed}"
        );
    }
}

#[test]
fn counter_is_monotone_under_random_ops() {
    for seed in 300..332u64 {
        let mut rng = Rng(seed);
        let mut c = Counter::new();
        let mut last = c.get();
        for _ in 0..500 {
            if rng.below(2) == 0 {
                c.inc();
            } else {
                c.add(rng.below(1_000_000));
            }
            assert!(c.get() >= last, "seed {seed}: counter went backwards");
            last = c.get();
        }
    }
}

#[test]
fn counter_add_saturates_instead_of_wrapping() {
    let mut c = Counter::new();
    c.add(u64::MAX - 1);
    c.add(u64::MAX);
    assert_eq!(c.get(), u64::MAX, "saturating add keeps monotonicity");
}

#[test]
fn snapshot_round_trips_through_json() {
    for seed in 400..432u64 {
        let mut rng = Rng(seed);
        let mut snap = MetricsSnapshot::new();
        for i in 0..rng.below(8) {
            snap.counter(format!("c{i}"), rng.next());
        }
        for i in 0..rng.below(8) {
            // Finite gauges only: NaN is unrepresentable in JSON.
            let v = (rng.below(1 << 52) as f64) / 1e6 - 1e3;
            snap.gauge(format!("g{i}"), v);
        }
        for i in 0..rng.below(4) {
            snap.histogram(format!("h{i}"), random_hist(&mut rng));
        }
        let json = snap.to_json();
        let text = json.to_string();
        let reparsed = dmm_obs::Json::parse(&text).expect("parse back");
        let back = MetricsSnapshot::from_json(&reparsed).expect("decode");
        assert_eq!(
            text,
            back.to_json().to_string(),
            "seed {seed}: snapshot JSON must round-trip byte-for-byte"
        );
    }
}

// ---------------------------------------------------------------------------
// Quantile extraction (the statistic quantile-goal controllers run on).
// ---------------------------------------------------------------------------

/// Quantiles to probe in every property, including the extremes.
const QS: [f64; 7] = [0.01, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99];

#[test]
fn quantile_is_monotone_in_q() {
    for seed in 500..564u64 {
        let mut rng = Rng(seed);
        let h = random_hist(&mut rng);
        let mut prev = None;
        for q in QS {
            let cur = h.quantile(q);
            if let (Some(p), Some(c)) = (prev, cur) {
                assert!(c >= p, "seed {seed}: quantile({q}) = {c} < {p}");
            }
            if cur.is_some() {
                prev = cur;
            }
        }
        // Empty histograms answer None for every q; populated ones never.
        assert_eq!(h.quantile(0.5).is_some(), h.count() > 0, "seed {seed}");
    }
}

#[test]
fn quantile_is_bracketed_by_min_and_max() {
    for seed in 600..664u64 {
        let mut rng = Rng(seed);
        let h = random_hist(&mut rng);
        if h.count() == 0 {
            continue;
        }
        let (min, max) = (h.min().expect("data"), h.max().expect("data"));
        for q in QS {
            let v = h.quantile(q).expect("populated");
            assert!(
                (min..=max).contains(&v),
                "seed {seed}: quantile({q}) = {v} outside [{min}, {max}]"
            );
        }
    }
}

#[test]
fn quantile_is_merge_order_invariant() {
    for seed in 700..748u64 {
        let mut rng = Rng(seed);
        let parts: Vec<Histogram> = (0..4).map(|_| random_hist(&mut rng)).collect();
        // Merge in node order and in reverse; the quantile read from the
        // coordinator's merged histogram must not depend on the order.
        let mut fwd = Histogram::exponential(1_000, 12);
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = Histogram::exponential(1_000, 12);
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        for q in QS {
            assert_eq!(
                fwd.quantile(q),
                rev.quantile(q),
                "seed {seed}: quantile({q}) depends on merge order"
            );
        }
    }
}

#[test]
fn quantile_is_exact_on_point_distributions() {
    for seed in 800..832u64 {
        let mut rng = Rng(seed);
        // Everything lands on one value (possibly in the overflow bucket):
        // every quantile is that value exactly, not a bucket edge.
        let v = rng.below(u64::MAX / 2);
        let mut h = Histogram::exponential(1_000, 12);
        for _ in 0..1 + rng.below(100) {
            h.record(v);
        }
        for q in QS {
            assert_eq!(h.quantile(q), Some(v), "seed {seed}: value {v}");
        }
    }
}

#[test]
fn quantile_on_empty_histogram_is_none_for_any_q() {
    let h = Histogram::exponential(1_000, 12);
    for q in [-1.0, 0.0, 0.01, 0.5, 0.99, 1.0, 2.0, f64::NAN] {
        assert_eq!(h.quantile(q), None, "q = {q}");
    }
}

#[test]
fn quantile_in_saturated_top_bucket_is_defined_and_bounded() {
    // All mass beyond the last bound: the nearest-rank walk falls through
    // every bounded bucket, and the answer must still be a defined value
    // clamped to the observed maximum — never a panic, never u64::MAX from
    // an open-ended bucket.
    let mut h = Histogram::exponential(1_000, 4);
    let last_bound = *h.bounds().last().expect("bounds");
    let values = [last_bound + 1, last_bound * 2, last_bound * 10];
    for v in values {
        h.record(v);
    }
    for q in QS {
        let v = h.quantile(q).expect("populated");
        assert!(
            (values[0]..=values[2]).contains(&v),
            "quantile({q}) = {v} outside the observed overflow range"
        );
    }
    assert_eq!(
        h.quantile(0.99),
        Some(values[2]),
        "top of the overflow mass"
    );
    // Degenerate q inputs on the same histogram stay defined too.
    assert!(h.quantile(f64::NAN).is_some());
    assert!(h.quantile(-3.0).is_some());
    assert!(h.quantile(7.0).is_some());
}
