//! Metrics primitives: counters, gauges, fixed-bucket histograms, and the
//! [`MetricsSnapshot`] aggregating all three.
//!
//! Everything here is integer-exact where it matters for determinism:
//! histograms record `u64` values (the simulator's native nanoseconds) with
//! saturating integer totals, so merging per-component instances is exactly
//! associative and commutative — per-thread or per-node metrics can be
//! combined in any grouping and produce bit-identical snapshots.

use crate::json::Json;

/// A monotone event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.add(1);
    }

    /// Adds `n` (saturating, so snapshots stay monotone even at the rail).
    pub fn add(&mut self, n: u64) {
        self.value = self.value.saturating_add(n);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// A last-write-wins instantaneous value.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Gauge {
    value: f64,
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrites the value.
    pub fn set(&mut self, value: f64) {
        self.value = value;
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.value
    }
}

/// A fixed-bucket histogram over `u64` values (typically nanoseconds).
///
/// `bounds` are inclusive upper bucket edges; one overflow bucket catches
/// everything above the last edge. Totals saturate instead of wrapping,
/// which keeps [`merge`](Histogram::merge) associative and commutative.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    total: u64,
    count: u64,
    /// Smallest recorded value (`u64::MAX` sentinel while empty).
    min_seen: u64,
    /// Largest recorded value (0 while empty).
    max_seen: u64,
}

impl Histogram {
    /// Histogram with the given inclusive upper bucket edges (must be
    /// strictly increasing and non-empty).
    pub fn new(bounds: Vec<u64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly increasing"
        );
        let n = bounds.len() + 1;
        Histogram {
            bounds,
            counts: vec![0; n],
            total: 0,
            count: 0,
            min_seen: u64::MAX,
            max_seen: 0,
        }
    }

    /// Doubling bucket edges: `first, 2·first, …` for `buckets` edges. With
    /// `first = 1 µs` and 24 buckets the last edge is ≈ 8.4 s — the full
    /// dynamic range of the simulator's queue waits.
    pub fn exponential(first: u64, buckets: usize) -> Self {
        assert!(first > 0 && buckets > 0);
        let mut bounds = Vec::with_capacity(buckets);
        let mut edge = first;
        for _ in 0..buckets {
            bounds.push(edge);
            edge = edge.saturating_mul(2);
        }
        bounds.dedup(); // saturation can repeat u64::MAX
        Histogram::new(bounds)
    }

    /// Log-linear bucket edges: each octave `[b, 2b)` is subdivided into
    /// `steps_per_octave` equal-width buckets, giving a bounded *relative*
    /// bucket width of `1/steps_per_octave` across the whole range — fine
    /// enough for quantile extraction where [`Histogram::exponential`]'s
    /// doubling edges are too coarse. All edges are computed with integer
    /// arithmetic (`b·(steps+j)/steps`), so the layout is bit-identical on
    /// every platform.
    pub fn log_linear(first: u64, last: u64, steps_per_octave: u64) -> Self {
        assert!(first > 0 && steps_per_octave > 0 && last > first);
        let mut bounds: Vec<u64> = Vec::new();
        let push = |edge: u64, bounds: &mut Vec<u64>| {
            if bounds.last().is_none_or(|&b| edge > b) {
                bounds.push(edge);
            }
        };
        let mut base = first;
        'octaves: loop {
            for j in 0..steps_per_octave {
                let edge = base
                    .saturating_mul(steps_per_octave + j)
                    .checked_div(steps_per_octave)
                    .unwrap_or(u64::MAX);
                push(edge, &mut bounds);
                if edge >= last {
                    break 'octaves;
                }
            }
            base = base.saturating_mul(2);
        }
        Histogram::new(bounds)
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx] += 1;
        self.total = self.total.saturating_add(value);
        self.count += 1;
        self.min_seen = self.min_seen.min(value);
        self.max_seen = self.max_seen.max(value);
    }

    /// Merges another histogram with identical bounds into this one.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "merge needs identical buckets");
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c = c.saturating_add(*o);
        }
        self.total = self.total.saturating_add(other.total);
        self.count = self.count.saturating_add(other.count);
        self.min_seen = self.min_seen.min(other.min_seen);
        self.max_seen = self.max_seen.max(other.max_seen);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean of recorded values (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Smallest recorded value, `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min_seen)
    }

    /// Largest recorded value, `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max_seen)
    }

    /// Deterministic nearest-rank quantile, `None` if empty.
    ///
    /// Walks the cumulative bucket counts to the bucket holding the
    /// `⌈q·count⌉`-th value and returns that bucket's inclusive upper edge,
    /// clamped into `[min, max]` of the recorded values. Properties that
    /// hold by construction (and are pinned by property tests):
    ///
    /// * monotone non-decreasing in `q`;
    /// * always bracketed by the observed min and max;
    /// * invariant under merge order (bucket counts and min/max merge
    ///   commutatively);
    /// * exact when all recorded values are equal (the clamp collapses the
    ///   bucket edge onto the single value);
    /// * defined for values in the overflow bucket (returns the observed
    ///   max rather than an edge) — never panics.
    ///
    /// `q` is clamped into `[0, 1]`; NaN reads as 0 (the minimum).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        // Nearest rank: the smallest k with cumulative(k) ≥ ⌈q·count⌉.
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cumulative = cumulative.saturating_add(c);
            if cumulative >= target {
                let edge = self.bounds.get(i).copied().unwrap_or(self.max_seen);
                return Some(edge.clamp(self.min_seen, self.max_seen));
            }
        }
        Some(self.max_seen)
    }

    /// The inclusive upper bucket edges.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds.len() + 1` entries; last is overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Drops all recorded values, keeping the bucket layout.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.count = 0;
        self.min_seen = u64::MAX;
        self.max_seen = 0;
    }

    /// JSON form (`bounds`, `counts`, `total`, `count`, `min`, `max`).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("bounds", self.bounds.as_slice())
            .field("counts", self.counts.as_slice())
            .field("total", self.total)
            .field("count", self.count)
            .field("min", self.min_seen)
            .field("max", self.max_seen)
    }

    /// Rebuilds from [`Histogram::to_json`] output.
    pub fn from_json(json: &Json) -> Option<Histogram> {
        let arr_u64 = |key: &str| -> Option<Vec<u64>> {
            json.get(key)?.as_arr()?.iter().map(Json::as_u64).collect()
        };
        let bounds = arr_u64("bounds")?;
        let counts = arr_u64("counts")?;
        if counts.len() != bounds.len() + 1 {
            return None;
        }
        let count = json.get("count")?.as_u64()?;
        // min/max were added alongside quantile extraction; tolerate their
        // absence in snapshots written before that (empty-histogram
        // sentinels are the only honest reconstruction).
        let h = Histogram {
            bounds,
            counts,
            total: json.get("total")?.as_u64()?,
            count,
            min_seen: json.get("min").and_then(Json::as_u64).unwrap_or(u64::MAX),
            max_seen: json.get("max").and_then(Json::as_u64).unwrap_or(0),
        };
        Some(h)
    }
}

/// A point-in-time aggregation of named counters, gauges and histograms.
///
/// Components *fill* a snapshot (each under its own name prefix); the order
/// of insertion is preserved, so a snapshot built by deterministic code
/// serializes identically on every run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, Histogram)>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        MetricsSnapshot::default()
    }

    /// Records a named counter value.
    pub fn counter(&mut self, name: impl Into<String>, value: u64) {
        self.counters.push((name.into(), value));
    }

    /// Records a named gauge value.
    pub fn gauge(&mut self, name: impl Into<String>, value: f64) {
        self.gauges.push((name.into(), value));
    }

    /// Records a named histogram.
    pub fn histogram(&mut self, name: impl Into<String>, hist: Histogram) {
        self.histograms.push((name.into(), hist));
    }

    /// Looks up a counter by name.
    pub fn get_counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge by name.
    pub fn get_gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a histogram by name.
    pub fn get_histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// All counters in insertion order.
    pub fn counters(&self) -> &[(String, u64)] {
        &self.counters
    }

    /// All gauges in insertion order.
    pub fn gauges(&self) -> &[(String, f64)] {
        &self.gauges
    }

    /// All histograms in insertion order.
    pub fn histograms(&self) -> &[(String, Histogram)] {
        &self.histograms
    }

    /// JSON form: `{"counters":{…},"gauges":{…},"histograms":{…}}`.
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(n, v)| (n.clone(), Json::U64(*v)))
                .collect(),
        );
        let gauges = Json::Obj(
            self.gauges
                .iter()
                .map(|(n, v)| (n.clone(), Json::F64(*v)))
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(n, h)| (n.clone(), h.to_json()))
                .collect(),
        );
        Json::obj()
            .field("counters", counters)
            .field("gauges", gauges)
            .field("histograms", histograms)
    }

    /// Rebuilds from [`MetricsSnapshot::to_json`] output.
    pub fn from_json(json: &Json) -> Option<MetricsSnapshot> {
        let mut snap = MetricsSnapshot::new();
        for (name, v) in json.get("counters")?.as_obj()? {
            snap.counters.push((name.clone(), v.as_u64()?));
        }
        for (name, v) in json.get("gauges")?.as_obj()? {
            snap.gauges.push((name.clone(), v.as_f64()?));
        }
        for (name, v) in json.get("histograms")?.as_obj()? {
            snap.histograms
                .push((name.clone(), Histogram::from_json(v)?));
        }
        Some(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotone_and_saturates() {
        let mut c = Counter::new();
        c.inc();
        c.add(5);
        assert_eq!(c.get(), 6);
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn histogram_buckets_values() {
        let mut h = Histogram::new(vec![10, 100, 1000]);
        for v in [5, 10, 11, 100, 5000] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[2, 2, 0, 1]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.total(), 5126);
        assert!((h.mean() - 5126.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn exponential_layout() {
        let h = Histogram::exponential(1_000, 24);
        assert_eq!(h.bounds().len(), 24);
        assert_eq!(h.bounds()[0], 1_000);
        assert_eq!(h.bounds()[23], 1_000 << 23);
    }

    #[test]
    fn quantile_walks_cumulative_counts() {
        let mut h = Histogram::new(vec![10, 100, 1000]);
        for v in [5, 7, 50, 60, 900, 950, 5000] {
            h.record(v);
        }
        assert_eq!(h.min(), Some(5));
        assert_eq!(h.max(), Some(5000));
        // rank ⌈0.25·7⌉ = 2 → first bucket (edge 10)
        assert_eq!(h.quantile(0.25), Some(10));
        // rank ⌈0.5·7⌉ = 4 → second bucket (edge 100)
        assert_eq!(h.quantile(0.5), Some(100));
        // rank 7 → overflow bucket → observed max, not an edge
        assert_eq!(h.quantile(1.0), Some(5000));
        // q ≤ 0 → rank 1, first bucket's edge
        assert_eq!(h.quantile(0.0), Some(10));
        assert_eq!(h.quantile(f64::NAN), Some(10));
    }

    #[test]
    fn quantile_on_empty_is_none() {
        let h = Histogram::new(vec![10]);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn quantile_exact_on_point_distribution() {
        let mut h = Histogram::exponential(1_000, 24);
        for _ in 0..100 {
            h.record(37_500);
        }
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(h.quantile(q), Some(37_500));
        }
    }

    #[test]
    fn log_linear_layout_is_fine_grained() {
        let h = Histogram::log_linear(10_000, 10_000_000_000, 8);
        let b = h.bounds();
        assert_eq!(b[0], 10_000);
        assert!(*b.last().unwrap() >= 10_000_000_000);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        // Relative width stays within one subdivision step.
        assert!(b
            .windows(2)
            .all(|w| (w[1] - w[0]) as f64 / w[0] as f64 <= 1.0 / 8.0 + 1e-9));
    }

    #[test]
    fn merge_adds() {
        let mut a = Histogram::new(vec![10, 100]);
        let mut b = a.clone();
        a.record(5);
        b.record(50);
        b.record(500);
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 1, 1]);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut h = Histogram::exponential(1, 4);
        h.record(3);
        let mut s = MetricsSnapshot::new();
        s.counter("sim.events", 42);
        s.gauge("net.utilization", 0.25);
        s.histogram("disk.wait_ns", h);
        let json = s.to_json();
        let back = MetricsSnapshot::from_json(&json).expect("roundtrips");
        assert_eq!(back, s);
        assert_eq!(back.get_counter("sim.events"), Some(42));
    }
}
