//! Minimal JSON with ordered object fields and deterministic output.
//!
//! The serializer writes object fields in exactly the order they were
//! inserted and formats floats with the standard library's shortest
//! round-trip representation, so a value built from deterministic inputs
//! serializes to byte-identical text on every run and platform. The parser
//! exists for round-trip tests and for test harnesses that consume emitted
//! trace files; it accepts standard JSON.

use std::fmt;

/// A JSON value. Objects preserve insertion order (`Vec` of pairs, not a
/// map): deterministic serialization is the whole point of this module.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also what non-finite floats serialize to).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer (counters, byte counts).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point. Non-finite values serialize as `null`.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with fields in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends a field to an object (panics on non-objects) and returns
    /// `self` for chaining.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("field() on non-object"),
        }
        self
    }

    /// Looks up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value as `f64` (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// String value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Array elements.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Object fields in order.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Serializes to compact JSON text.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::U64(v) => {
                use fmt::Write;
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                use fmt::Write;
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                use fmt::Write;
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text (standard grammar; numbers without `.`/exponent
    /// become integer variants).
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(ParseError {
                at: pos,
                what: "trailing input",
            });
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::U64(v as u64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::I64(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}
impl<T: Into<Json> + Copy> From<&[T]> for Json {
    fn from(v: &[T]) -> Json {
        Json::Arr(v.iter().map(|&x| x.into()).collect())
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map_or(Json::Null, Into::into)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What was wrong.
    pub what: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for ParseError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8, what: &'static str) -> Result<(), ParseError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(ParseError { at: *pos, what })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err(ParseError {
            at: *pos,
            what: "unexpected end of input",
        });
    };
    match b {
        b'n' => parse_lit(bytes, pos, "null", Json::Null),
        b't' => parse_lit(bytes, pos, "true", Json::Bool(true)),
        b'f' => parse_lit(bytes, pos, "false", Json::Bool(false)),
        b'"' => parse_string(bytes, pos).map(Json::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => {
                        return Err(ParseError {
                            at: *pos,
                            what: "expected ',' or ']'",
                        })
                    }
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':', "expected ':'")?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => {
                        return Err(ParseError {
                            at: *pos,
                            what: "expected ',' or '}'",
                        })
                    }
                }
            }
        }
        b'-' | b'0'..=b'9' => parse_number(bytes, pos),
        _ => Err(ParseError {
            at: *pos,
            what: "unexpected character",
        }),
    }
}

fn parse_lit(
    bytes: &[u8],
    pos: &mut usize,
    lit: &'static str,
    value: Json,
) -> Result<Json, ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(ParseError {
            at: *pos,
            what: "invalid literal",
        })
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(bytes, pos, b'"', "expected '\"'")?;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(ParseError {
                at: *pos,
                what: "unterminated string",
            });
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(ParseError {
                        at: *pos,
                        what: "unterminated escape",
                    });
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or(ParseError {
                                at: *pos,
                                what: "bad \\u escape",
                            })?;
                        *pos += 4;
                        // Surrogate pairs are not needed for our traces;
                        // unpaired surrogates map to the replacement char.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                    }
                    _ => {
                        return Err(ParseError {
                            at: *pos,
                            what: "unknown escape",
                        })
                    }
                }
            }
            _ => {
                // Re-decode UTF-8 starting at the byte we consumed.
                let start = *pos - 1;
                let s = std::str::from_utf8(&bytes[start..]).map_err(|_| ParseError {
                    at: start,
                    what: "invalid UTF-8",
                })?;
                let c = s.chars().next().expect("non-empty");
                out.push(c);
                *pos = start + c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII slice");
    if !float {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::U64(v));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Json::I64(v));
        }
    }
    text.parse::<f64>().map(Json::F64).map_err(|_| ParseError {
        at: start,
        what: "invalid number",
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_fields_serialize_in_order() {
        let j = Json::obj()
            .field("z", 1u64)
            .field("a", 2u64)
            .field("m", Json::Arr(vec![Json::Bool(true), Json::Null]));
        assert_eq!(j.to_string(), r#"{"z":1,"a":2,"m":[true,null]}"#);
    }

    #[test]
    fn roundtrip() {
        let j = Json::obj()
            .field("rt", 3.25f64)
            .field("n", -7i64)
            .field("big", u64::MAX)
            .field("s", "a\"b\\c\nd")
            .field("nested", Json::obj().field("x", Json::Null));
        let text = j.to_string();
        assert_eq!(Json::parse(&text).expect("parses"), j);
    }

    #[test]
    fn float_formatting_is_shortest_roundtrip() {
        let mut s = String::new();
        Json::F64(0.1).write(&mut s);
        assert_eq!(s, "0.1");
        let mut s = String::new();
        Json::F64(f64::NAN).write(&mut s);
        assert_eq!(s, "null", "non-finite floats become null");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn accessors() {
        let j = Json::parse(r#"{"a":1,"b":[2.5],"c":"x","d":true}"#).expect("parses");
        assert_eq!(j.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("b").and_then(Json::as_arr).map(|a| a.len()), Some(1));
        assert_eq!(j.get("c").and_then(Json::as_str), Some("x"));
        assert_eq!(j.get("d").and_then(Json::as_bool), Some(true));
        assert_eq!(j.get("missing"), None);
    }
}
