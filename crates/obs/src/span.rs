//! Operation-level span taxonomy.
//!
//! A *span* is the exact decomposition of one operation's response time into
//! lifecycle stages, measured in simulated nanoseconds. The stage set is a
//! partition: every nanosecond between an operation's arrival and its
//! completion lands in exactly one [`Stage`], so the per-stage sums
//! reconstruct the response time with integer-exact accounting.
//!
//! The accumulating storage (a pooled slot arena) lives in the simulation
//! substrate; this module defines the shared vocabulary — the stage set,
//! the [`SpanMode`] knob, and the deterministic sampling rule.

/// Number of lifecycle stages in a span. Stage values index `[u64; STAGES]`.
pub const STAGES: usize = 8;

/// Per-stage accumulated simulated nanoseconds for one operation.
pub type StageNanos = [u64; STAGES];

/// One lifecycle stage of a data-plane operation.
///
/// The stages partition an operation's response time:
///
/// * [`Stage::LocalHit`] — the entire lookup segment (CPU queueing +
///   service) of an access satisfied from the origin node's buffer.
/// * [`Stage::PoolQueue`] — origin-CPU queueing before the lookup or
///   page-install step of a *miss* path (the wait to get at the buffer
///   pool).
/// * [`Stage::NetRequest`] — LAN transit of control messages (request to
///   home, forward to holder, bounce), including medium queueing,
///   serialization and retransmits.
/// * [`Stage::NetTransfer`] — LAN transit of the page ship itself.
/// * [`Stage::RemoteHit`] — queueing + service at the remote (home or
///   holder) node's CPU while it serves the request.
/// * [`Stage::DiskQueue`] — wait in a disk facility's FCFS queue.
/// * [`Stage::DiskService`] — disk service time proper (including any
///   fault-injected stall inflation).
/// * [`Stage::Cpu`] — origin-CPU service time of the lookup and install
///   steps on miss paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Stage {
    /// Lookup segment of a buffer hit at the origin node.
    LocalHit = 0,
    /// Origin-CPU queueing on miss paths (before lookup / install).
    PoolQueue = 1,
    /// Control-message LAN transit (request, forward, bounce).
    NetRequest = 2,
    /// Page-ship LAN transit.
    NetTransfer = 3,
    /// Remote serve-CPU queueing + service at home/holder.
    RemoteHit = 4,
    /// Disk FCFS queue wait.
    DiskQueue = 5,
    /// Disk service time.
    DiskService = 6,
    /// Origin-CPU service on miss paths (lookup + install).
    Cpu = 7,
}

impl Stage {
    /// Every stage, in index order.
    pub const ALL: [Stage; STAGES] = [
        Stage::LocalHit,
        Stage::PoolQueue,
        Stage::NetRequest,
        Stage::NetTransfer,
        Stage::RemoteHit,
        Stage::DiskQueue,
        Stage::DiskService,
        Stage::Cpu,
    ];

    /// Stable snake_case name used in metric keys and trace records.
    pub fn name(self) -> &'static str {
        match self {
            Stage::LocalHit => "local_hit",
            Stage::PoolQueue => "pool_queue",
            Stage::NetRequest => "net_request",
            Stage::NetTransfer => "net_transfer",
            Stage::RemoteHit => "remote_hit",
            Stage::DiskQueue => "disk_queue",
            Stage::DiskService => "disk_service",
            Stage::Cpu => "cpu",
        }
    }

    /// Index into a [`StageNanos`] array.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// How much span machinery a run pays for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpanMode {
    /// No span accumulation at all: no arena traffic, no histograms. The
    /// hot path pays one branch per attribution point. The default.
    #[default]
    Off,
    /// Accumulate per-class × per-stage histograms in the metrics
    /// snapshot, but emit no per-operation trace records.
    Histograms,
    /// Histograms plus sampled `span` trace records: one record per
    /// `every` operations, selected deterministically by operation
    /// sequence number so traces stay byte-identical per seed.
    Sampled {
        /// Emit a record for ops whose sequence number is divisible by
        /// this (`every == 1` records every operation). Must be ≥ 1.
        every: u32,
    },
}

impl SpanMode {
    /// Whether any span accumulation happens (histograms at minimum).
    pub fn enabled(&self) -> bool {
        !matches!(self, SpanMode::Off)
    }

    /// The sampling modulus, when per-operation records are requested.
    pub fn sample_every(&self) -> Option<u32> {
        match self {
            SpanMode::Sampled { every } => Some((*every).max(1)),
            _ => None,
        }
    }

    /// The deterministic sampling rule: sample iff the op's sequence
    /// number is divisible by `every`. Keyed on the workload generator's
    /// sequential op numbering, which depends only on the seed — never on
    /// event interleaving — so sampled traces are byte-identical per seed.
    pub fn samples(&self, op_seq: u64) -> bool {
        match self.sample_every() {
            Some(every) => op_seq.is_multiple_of(u64::from(every)),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_are_unique_and_indexed() {
        let mut seen = std::collections::HashSet::new();
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
            assert!(seen.insert(stage.name()), "duplicate name {}", stage.name());
        }
        assert_eq!(seen.len(), STAGES);
    }

    #[test]
    fn mode_gates() {
        assert!(!SpanMode::Off.enabled());
        assert!(SpanMode::Histograms.enabled());
        assert!(SpanMode::Histograms.sample_every().is_none());
        let s = SpanMode::Sampled { every: 16 };
        assert_eq!(s.sample_every(), Some(16));
        assert!(s.samples(0) && s.samples(32) && !s.samples(17));
        // every == 0 is clamped to 1 rather than dividing by zero.
        assert!(SpanMode::Sampled { every: 0 }.samples(7));
        assert!(!SpanMode::Off.samples(0));
    }
}
