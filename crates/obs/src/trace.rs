//! Structured event traces.
//!
//! Instrumented components publish one [`Json`] record per interesting event
//! (a control-loop phase, an allocation grant, …) through a [`TraceSink`].
//! The default [`NoopSink`] reports `enabled() == false`; instrumented code
//! checks that flag before building the record, so tracing costs one branch
//! when disabled:
//!
//! ```
//! use dmm_obs::{Json, NoopSink, TraceSink};
//! let mut sink = NoopSink;
//! if sink.enabled() {
//!     sink.emit(&Json::obj().field("type", "check"));
//! }
//! ```

use std::collections::VecDeque;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::json::Json;

/// Receiver of structured trace records.
///
/// `Send` so a simulation carrying a sink can move onto a worker thread
/// (parallel replication in the bench helpers).
pub trait TraceSink: Send {
    /// Whether records will be kept. Callers skip building records when
    /// false.
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one record.
    fn emit(&mut self, record: &Json);

    /// Records this sink has lost (write failure, bounded buffer full, …).
    /// Surfaced as the `obs.sink.dropped_records` counter in metrics
    /// snapshots.
    fn dropped_records(&self) -> u64 {
        0
    }

    /// Write errors this sink has latched. Surfaced as the
    /// `obs.sink.errors` counter in metrics snapshots so a sink that failed
    /// mid-run is diagnosable instead of silently truncating the trace.
    fn write_errors(&self) -> u64 {
        0
    }
}

/// Discards everything; `enabled()` is false. The default sink.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn emit(&mut self, _record: &Json) {}
}

/// Collects serialized records in memory, behind a shared handle so the
/// emitting simulation can own the sink while the test keeps reading.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    lines: Arc<Mutex<Vec<String>>>,
}

impl VecSink {
    /// An empty in-memory sink.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// A second handle to the same line buffer.
    pub fn handle(&self) -> VecSink {
        VecSink {
            lines: Arc::clone(&self.lines),
        }
    }

    /// The serialized records emitted so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("sink lock").clone()
    }

    /// All records joined into one JSON-lines document.
    pub fn to_jsonl(&self) -> String {
        let lines = self.lines.lock().expect("sink lock");
        let mut out = String::new();
        for line in lines.iter() {
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

impl TraceSink for VecSink {
    fn emit(&mut self, record: &Json) {
        self.lines
            .lock()
            .expect("sink lock")
            .push(record.to_string());
    }
}

/// Shared state of a [`StreamSink`]: the bounded line ring plus loss
/// accounting.
#[derive(Debug, Default)]
struct StreamShared {
    ring: VecDeque<String>,
    dropped: u64,
}

/// Bounded in-memory streaming sink for live consumers (`dmm-trace watch`
/// and other tail readers).
///
/// `emit` serializes the record and pushes it onto a fixed-capacity ring.
/// When the ring is full — the consumer fell behind — the *incoming* record
/// is dropped and counted, so the buffered prefix stays a contiguous,
/// in-order slice of the trace and the simulation hot path never blocks on
/// a slow reader. [`StreamSink::drain`] (on any handle) pops everything
/// buffered so far; [`StreamSink::dropped_records`] reports the loss.
#[derive(Debug, Clone)]
pub struct StreamSink {
    shared: Arc<Mutex<StreamShared>>,
    capacity: usize,
    /// Per-handle size hint so each serialized line is allocated once
    /// instead of growing from empty on every record.
    line_hint: usize,
}

impl StreamSink {
    /// A streaming sink buffering at most `capacity` records (≥ 1). The
    /// ring's backing store is pre-reserved (up to a sane bound) so steady
    /// emission never reallocates it.
    pub fn bounded(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        StreamSink {
            shared: Arc::new(Mutex::new(StreamShared {
                ring: VecDeque::with_capacity(capacity.min(1 << 16)),
                dropped: 0,
            })),
            capacity,
            line_hint: 128,
        }
    }

    /// A second handle to the same ring (e.g. one for the simulation, one
    /// for the consumer thread).
    pub fn handle(&self) -> StreamSink {
        self.clone()
    }

    /// Pops every buffered record, oldest first.
    pub fn drain(&self) -> Vec<String> {
        let mut shared = self.shared.lock().expect("stream sink lock");
        shared.ring.drain(..).collect()
    }

    /// Records currently buffered.
    pub fn len(&self) -> usize {
        self.shared.lock().expect("stream sink lock").ring.len()
    }

    /// Whether the ring is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records dropped because the ring was full when they arrived.
    pub fn dropped_records(&self) -> u64 {
        self.shared.lock().expect("stream sink lock").dropped
    }
}

impl TraceSink for StreamSink {
    fn emit(&mut self, record: &Json) {
        // Serialize outside the lock, straight into a right-sized buffer
        // (skipping `to_string`'s intermediate copy): the only contended
        // work is one push.
        let mut line = String::with_capacity(self.line_hint);
        record.write(&mut line);
        self.line_hint = self.line_hint.max(line.len().next_power_of_two());
        let mut shared = self.shared.lock().expect("stream sink lock");
        if shared.ring.len() >= self.capacity {
            shared.dropped += 1;
        } else {
            shared.ring.push_back(line);
        }
    }

    fn dropped_records(&self) -> u64 {
        StreamSink::dropped_records(self)
    }
}

/// Writes one compact JSON record per line to an [`io::Write`]r (JSON-lines).
///
/// Write failures degrade gracefully instead of panicking mid-run: the
/// first [`io::Error`] is kept, every record from the failing one onward is
/// dropped (and counted), and [`JsonLinesSink::flush`] surfaces the stored
/// error so batch drivers can report a truncated trace at the end of the
/// run.
pub struct JsonLinesSink {
    writer: BufWriter<Box<dyn Write + Send>>,
    error: Option<io::Error>,
    dropped: u64,
}

impl JsonLinesSink {
    /// Sink over an arbitrary writer.
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        JsonLinesSink {
            writer: BufWriter::new(writer),
            error: None,
            dropped: 0,
        }
    }

    /// Sink writing to a file at `path` (truncating), creating parent
    /// directories as needed.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::File::create(path)?;
        Ok(JsonLinesSink::new(Box::new(file)))
    }

    /// Flushes buffered lines to the underlying writer, surfacing a write
    /// error recorded by an earlier [`TraceSink::emit`] if there was one.
    pub fn flush(&mut self) -> io::Result<()> {
        if let Some(err) = &self.error {
            return Err(io::Error::new(err.kind(), err.to_string()));
        }
        let flushed = self.writer.flush();
        if let Err(err) = &flushed {
            self.error = Some(io::Error::new(err.kind(), err.to_string()));
        }
        flushed
    }

    /// The first write error encountered, if the sink has failed.
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Number of records dropped because the sink had failed (includes the
    /// record whose write first surfaced the error).
    pub fn dropped_records(&self) -> u64 {
        self.dropped
    }
}

impl TraceSink for JsonLinesSink {
    fn emit(&mut self, record: &Json) {
        // A sink that has failed (full disk, closed pipe, …) stays failed:
        // keep the first error for the caller, count what was lost, and let
        // the run finish rather than panicking mid-simulation.
        if self.error.is_some() {
            self.dropped += 1;
            return;
        }
        let mut line = String::new();
        record.write(&mut line);
        line.push('\n');
        if let Err(err) = self.writer.write_all(line.as_bytes()) {
            // One warning, at the moment of failure; the latched error and
            // the `obs.sink.errors` / `obs.sink.dropped_records` counters
            // carry the rest of the story.
            eprintln!("dmm-obs: trace sink write failed ({err}); dropping all further records");
            self.error = Some(err);
            self.dropped += 1;
        }
    }

    fn dropped_records(&self) -> u64 {
        self.dropped
    }

    fn write_errors(&self) -> u64 {
        u64::from(self.error.is_some())
    }
}

impl Drop for JsonLinesSink {
    fn drop(&mut self) {
        let _ = self.writer.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled() {
        let mut sink = NoopSink;
        assert!(!sink.enabled());
        sink.emit(&Json::Null); // must not panic
    }

    #[test]
    fn vec_sink_shares_lines() {
        let sink = VecSink::new();
        let mut writer = sink.handle();
        writer.emit(&Json::obj().field("a", 1u64));
        writer.emit(&Json::obj().field("b", 2u64));
        assert_eq!(sink.lines(), vec![r#"{"a":1}"#, r#"{"b":2}"#]);
        assert_eq!(sink.to_jsonl(), "{\"a\":1}\n{\"b\":2}\n");
    }

    /// A writer that accepts `limit` bytes, then fails every write.
    struct FailingWriter {
        written: usize,
        limit: usize,
    }

    impl Write for FailingWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.written + buf.len() > self.limit {
                return Err(io::Error::new(io::ErrorKind::WriteZero, "disk full"));
            }
            self.written += buf.len();
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn stream_sink_buffers_in_order_and_drops_newest_when_full() {
        let sink = StreamSink::bounded(2);
        let mut writer = sink.handle();
        writer.emit(&Json::obj().field("a", 1u64));
        writer.emit(&Json::obj().field("b", 2u64));
        writer.emit(&Json::obj().field("c", 3u64)); // ring full: dropped
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped_records(), 1);
        assert_eq!(TraceSink::dropped_records(&writer), 1);
        assert_eq!(sink.drain(), vec![r#"{"a":1}"#, r#"{"b":2}"#]);
        assert!(sink.is_empty());
        // Draining frees capacity; the drop counter is cumulative.
        writer.emit(&Json::obj().field("d", 4u64));
        assert_eq!(sink.drain(), vec![r#"{"d":4}"#]);
        assert_eq!(sink.dropped_records(), 1);
    }

    #[test]
    fn jsonl_sink_degrades_gracefully_on_write_error() {
        let mut sink = JsonLinesSink::new(Box::new(FailingWriter {
            written: 0,
            limit: 0,
        }));
        // A record larger than the BufWriter's internal buffer is written
        // through immediately, so the failure surfaces on this emit.
        let big = Json::obj().field("pad", "x".repeat(64 * 1024));
        sink.emit(&big);
        assert!(sink.error().is_some(), "first failing write is recorded");
        assert_eq!(sink.error().unwrap().kind(), io::ErrorKind::WriteZero);
        assert_eq!(sink.dropped_records(), 1);
        // Subsequent records are dropped without touching the dead writer
        // and without panicking.
        sink.emit(&Json::obj().field("a", 1u64));
        sink.emit(&Json::obj().field("b", 2u64));
        assert_eq!(sink.dropped_records(), 3);
        assert_eq!(TraceSink::dropped_records(&sink), 3);
        assert_eq!(sink.write_errors(), 1);
        assert_eq!(sink.error().unwrap().kind(), io::ErrorKind::WriteZero);
        // flush() surfaces the stored error instead of pretending success.
        let err = sink.flush().expect_err("flush must surface the failure");
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
    }

    #[test]
    fn jsonl_sink_healthy_path_reports_no_error() {
        let mut sink = JsonLinesSink::new(Box::new(Vec::<u8>::new()));
        sink.emit(&Json::obj().field("ok", true));
        assert!(sink.error().is_none());
        assert_eq!(sink.dropped_records(), 0);
        sink.flush().expect("healthy flush");
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let path = std::env::temp_dir().join("dmm_obs_trace_test.jsonl");
        {
            let mut sink = JsonLinesSink::create(&path).expect("create");
            sink.emit(&Json::obj().field("t", "x"));
        }
        let text = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(text, "{\"t\":\"x\"}\n");
        let _ = std::fs::remove_file(&path);
    }
}
