//! Structured event traces.
//!
//! Instrumented components publish one [`Json`] record per interesting event
//! (a control-loop phase, an allocation grant, …) through a [`TraceSink`].
//! The default [`NoopSink`] reports `enabled() == false`; instrumented code
//! checks that flag before building the record, so tracing costs one branch
//! when disabled:
//!
//! ```
//! use dmm_obs::{Json, NoopSink, TraceSink};
//! let mut sink = NoopSink;
//! if sink.enabled() {
//!     sink.emit(&Json::obj().field("type", "check"));
//! }
//! ```

use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::json::Json;

/// Receiver of structured trace records.
///
/// `Send` so a simulation carrying a sink can move onto a worker thread
/// (parallel replication in the bench helpers).
pub trait TraceSink: Send {
    /// Whether records will be kept. Callers skip building records when
    /// false.
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one record.
    fn emit(&mut self, record: &Json);
}

/// Discards everything; `enabled()` is false. The default sink.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn enabled(&self) -> bool {
        false
    }

    fn emit(&mut self, _record: &Json) {}
}

/// Collects serialized records in memory, behind a shared handle so the
/// emitting simulation can own the sink while the test keeps reading.
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    lines: Arc<Mutex<Vec<String>>>,
}

impl VecSink {
    /// An empty in-memory sink.
    pub fn new() -> Self {
        VecSink::default()
    }

    /// A second handle to the same line buffer.
    pub fn handle(&self) -> VecSink {
        VecSink {
            lines: Arc::clone(&self.lines),
        }
    }

    /// The serialized records emitted so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("sink lock").clone()
    }

    /// All records joined into one JSON-lines document.
    pub fn to_jsonl(&self) -> String {
        let lines = self.lines.lock().expect("sink lock");
        let mut out = String::new();
        for line in lines.iter() {
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

impl TraceSink for VecSink {
    fn emit(&mut self, record: &Json) {
        self.lines
            .lock()
            .expect("sink lock")
            .push(record.to_string());
    }
}

/// Writes one compact JSON record per line to an [`io::Write`]r (JSON-lines).
pub struct JsonLinesSink {
    writer: BufWriter<Box<dyn Write + Send>>,
}

impl JsonLinesSink {
    /// Sink over an arbitrary writer.
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        JsonLinesSink {
            writer: BufWriter::new(writer),
        }
    }

    /// Sink writing to a file at `path` (truncating), creating parent
    /// directories as needed.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = std::fs::File::create(path)?;
        Ok(JsonLinesSink::new(Box::new(file)))
    }

    /// Flushes buffered lines to the underlying writer.
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

impl TraceSink for JsonLinesSink {
    fn emit(&mut self, record: &Json) {
        let mut line = String::new();
        record.write(&mut line);
        line.push('\n');
        // A full disk during a simulation run is unrecoverable anyway:
        // surface it rather than silently truncating the trace.
        self.writer
            .write_all(line.as_bytes())
            .expect("trace sink write");
    }
}

impl Drop for JsonLinesSink {
    fn drop(&mut self) {
        let _ = self.writer.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_is_disabled() {
        let mut sink = NoopSink;
        assert!(!sink.enabled());
        sink.emit(&Json::Null); // must not panic
    }

    #[test]
    fn vec_sink_shares_lines() {
        let sink = VecSink::new();
        let mut writer = sink.handle();
        writer.emit(&Json::obj().field("a", 1u64));
        writer.emit(&Json::obj().field("b", 2u64));
        assert_eq!(sink.lines(), vec![r#"{"a":1}"#, r#"{"b":2}"#]);
        assert_eq!(sink.to_jsonl(), "{\"a\":1}\n{\"b\":2}\n");
    }

    #[test]
    fn jsonl_sink_writes_lines() {
        let path = std::env::temp_dir().join("dmm_obs_trace_test.jsonl");
        {
            let mut sink = JsonLinesSink::create(&path).expect("create");
            sink.emit(&Json::obj().field("t", "x"));
        }
        let text = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(text, "{\"t\":\"x\"}\n");
        let _ = std::fs::remove_file(&path);
    }
}
