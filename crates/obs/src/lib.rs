//! # dmm-obs — observability substrate
//!
//! A dependency-free metrics and structured-trace layer shared by every
//! crate in the workspace:
//!
//! * [`json`] — a minimal JSON value type with **ordered** object fields, a
//!   deterministic serializer (shortest-roundtrip float formatting via the
//!   standard library) and a small parser for round-trip tests. Field order
//!   is preserved exactly as written, which is what makes emitted traces
//!   byte-identical across runs with the same seed.
//! * [`metrics`] — counters, gauges and fixed-bucket histograms plus a
//!   [`MetricsSnapshot`] aggregating all three;
//!   histogram merge is associative and commutative so per-thread or
//!   per-node instances can be combined in any grouping.
//! * [`span`] — the operation-level span vocabulary: the lifecycle
//!   [`Stage`] taxonomy (an exact partition of each operation's response
//!   time) and the [`SpanMode`] knob with its deterministic 1-in-N
//!   sampling rule keyed on operation sequence numbers.
//! * [`trace`] — the [`TraceSink`] trait behind which the
//!   control loop publishes one structured record per phase. The default
//!   [`NoopSink`] reports `enabled() == false`, so
//!   instrumented code skips record construction entirely and the
//!   observability layer costs nothing when unused.

pub mod json;
pub mod metrics;
pub mod span;
pub mod trace;

pub use json::Json;
pub use metrics::{Counter, Gauge, Histogram, MetricsSnapshot};
pub use span::{SpanMode, Stage, StageNanos, STAGES};
pub use trace::{JsonLinesSink, NoopSink, StreamSink, TraceSink, VecSink};
