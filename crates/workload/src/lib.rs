//! # dmm-workload — multiclass workload generation
//!
//! Implements the workload model of the paper's §3 and §7.1:
//!
//! * operations arrive at every node with exponentially distributed
//!   interarrival times `1/λ_{k,i}`;
//! * each operation performs `pages_per_op` accesses whose page identities
//!   follow a Zipf distribution with skew `θ` over the class's page set;
//! * classes are either *Goal* classes (response time goal in ms) or the
//!   *No-Goal* class 0;
//! * page sets of different classes may be disjoint or share a fraction of
//!   pages (§7.4) — shared pages are the hottest ranks of both classes, which
//!   is what lets one class profit from another's dedicated buffer
//!   (§3 Example 2);
//! * the convergence experiments re-randomize a class's goal after four
//!   consecutive satisfied observation intervals, drawing from a calibrated
//!   `[goal_min, goal_max]` range ([`GoalSchedule`], §7.1).

pub mod class;
pub mod generator;
pub mod goal_schedule;

pub use class::{ClassSpec, GoalMetric, RateShift, WorkloadSpec};
pub use generator::WorkloadGenerator;
pub use goal_schedule::{GoalRange, GoalSchedule};
