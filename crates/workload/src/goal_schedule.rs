//! Goal re-randomization for the convergence experiments.
//!
//! §7.1: "we count the number of intervals in which the system reaches a
//! state satisfying the response time goal, changing the response time goal
//! after four 'satisfied' intervals. The new goal is randomly chosen so that
//! it should be satisfiable under the current workload and also differs
//! significantly from the current goal." The satisfiable range
//! `[goal_min, goal_max]` comes from calibration runs: the response times
//! with 2/3 resp. 1/3 of the aggregate cache dedicated (§7.3).

use dmm_sim::SimRng;

/// Calibrated satisfiable goal range in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GoalRange {
    /// Response time with 2/3 of the aggregate cache dedicated (tightest
    /// satisfiable goal).
    pub min_ms: f64,
    /// Response time with 1/3 of the aggregate cache dedicated (loosest goal
    /// exercised).
    pub max_ms: f64,
}

impl GoalRange {
    /// Validated constructor.
    pub fn new(min_ms: f64, max_ms: f64) -> Self {
        assert!(min_ms > 0.0 && max_ms > min_ms, "invalid range");
        GoalRange { min_ms, max_ms }
    }

    /// Range width.
    pub fn width(&self) -> f64 {
        self.max_ms - self.min_ms
    }
}

/// Tracks satisfied intervals for one goal class and re-randomizes its goal.
#[derive(Debug)]
pub struct GoalSchedule {
    range: GoalRange,
    current_ms: f64,
    satisfied_streak: u32,
    streak_to_change: u32,
    /// Minimum relative jump (fraction of the range width) for a new goal to
    /// count as "differing significantly".
    min_jump_frac: f64,
    rng: SimRng,
    changes: u64,
}

impl GoalSchedule {
    /// Schedule that changes the goal after 4 satisfied intervals (the
    /// paper's protocol), starting from `initial_ms`.
    pub fn new(range: GoalRange, initial_ms: f64, seed: u64) -> Self {
        GoalSchedule {
            range,
            current_ms: initial_ms,
            satisfied_streak: 0,
            streak_to_change: 4,
            min_jump_frac: 0.25,
            rng: SimRng::seed_from_u64(seed),
            changes: 0,
        }
    }

    /// The goal currently in force (ms).
    pub fn current_ms(&self) -> f64 {
        self.current_ms
    }

    /// Number of goal changes issued.
    pub fn changes(&self) -> u64 {
        self.changes
    }

    /// The calibrated range.
    pub fn range(&self) -> GoalRange {
        self.range
    }

    /// Reports one observation interval's outcome. Returns `Some(new_goal)`
    /// when the streak completed and the goal was re-randomized.
    pub fn observe_interval(&mut self, satisfied: bool) -> Option<f64> {
        if !satisfied {
            self.satisfied_streak = 0;
            return None;
        }
        self.satisfied_streak += 1;
        if self.satisfied_streak < self.streak_to_change {
            return None;
        }
        self.satisfied_streak = 0;
        self.changes += 1;
        self.current_ms = self.draw_distant_goal();
        Some(self.current_ms)
    }

    fn draw_distant_goal(&mut self) -> f64 {
        let min_jump = self.min_jump_frac * self.range.width();
        // Rejection sample; the acceptance region is non-empty whenever the
        // current goal sits inside the range, and we cap retries defensively.
        for _ in 0..64 {
            let g = self.rng.uniform(self.range.min_ms, self.range.max_ms);
            if (g - self.current_ms).abs() >= min_jump {
                return g;
            }
        }
        // Fall back to the far end of the range.
        if self.current_ms - self.range.min_ms > self.range.max_ms - self.current_ms {
            self.range.min_ms
        } else {
            self.range.max_ms
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn changes_after_four_satisfied_intervals() {
        let mut s = GoalSchedule::new(GoalRange::new(2.0, 10.0), 5.0, 1);
        assert_eq!(s.observe_interval(true), None);
        assert_eq!(s.observe_interval(true), None);
        assert_eq!(s.observe_interval(true), None);
        let new = s.observe_interval(true).expect("4th satisfied interval");
        assert!((2.0..=10.0).contains(&new));
        assert!((new - 5.0).abs() >= 0.25 * 8.0);
        assert_eq!(s.changes(), 1);
    }

    #[test]
    fn violation_resets_streak() {
        let mut s = GoalSchedule::new(GoalRange::new(2.0, 10.0), 5.0, 2);
        for _ in 0..3 {
            assert_eq!(s.observe_interval(true), None);
        }
        assert_eq!(s.observe_interval(false), None);
        for _ in 0..3 {
            assert_eq!(s.observe_interval(true), None);
        }
        assert!(s.observe_interval(true).is_some());
    }

    #[test]
    fn goals_stay_in_range_over_many_changes() {
        let mut s = GoalSchedule::new(GoalRange::new(3.0, 7.0), 5.0, 3);
        for _ in 0..200 {
            for _ in 0..3 {
                s.observe_interval(true);
            }
            if let Some(g) = s.observe_interval(true) {
                assert!((3.0..=7.0).contains(&g));
            }
        }
        assert_eq!(s.changes(), 200);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut s = GoalSchedule::new(GoalRange::new(2.0, 10.0), 6.0, seed);
            let mut gs = Vec::new();
            for _ in 0..40 {
                if let Some(g) = s.observe_interval(true) {
                    gs.push(g);
                }
            }
            gs
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn rejects_degenerate_range() {
        GoalRange::new(5.0, 5.0);
    }
}
