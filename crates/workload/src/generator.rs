//! Per-(node, class) arrival and operation generation.

use dmm_buffer::ClassId;
use dmm_cluster::{NodeId, OpId, Operation};
use dmm_sim::dist::{Exponential, Zipf};
use dmm_sim::{SimDuration, SimRng, SimTime};

use crate::class::WorkloadSpec;

/// One independent arrival stream.
#[derive(Debug)]
struct Stream {
    class: ClassId,
    node: NodeId,
    /// Interarrival distribution for the *base* rates; streams with rate
    /// shifts rebuild the distribution per draw from the rates in force.
    interarrival: Option<Exponential>,
    rng: SimRng,
}

/// Draws interarrival gaps and operation contents for every (node, class)
/// pair, deterministically from one seed.
#[derive(Debug)]
pub struct WorkloadGenerator {
    spec: WorkloadSpec,
    zipf: Vec<Zipf>, // per class
    streams: Vec<Stream>,
    next_op: u64,
}

impl WorkloadGenerator {
    /// Builds the generator. Streams are seeded as `seed ⊕ f(node, class)`
    /// so adding classes or nodes never shifts other streams.
    pub fn new(spec: WorkloadSpec, nodes: usize, seed: u64) -> Self {
        let root = SimRng::seed_from_u64(seed);
        let zipf = spec
            .classes
            .iter()
            .map(|c| Zipf::new(c.pages.len(), c.zipf_theta))
            .collect();
        let mut streams = Vec::new();
        for c in &spec.classes {
            for node in 0..nodes {
                let rate = c.arrival_per_ms[node];
                let interarrival = if rate > 0.0 {
                    Some(Exponential::from_mean(SimDuration::from_millis_f64(
                        1.0 / rate,
                    )))
                } else {
                    None
                };
                streams.push(Stream {
                    class: c.class,
                    node: NodeId(node as u16),
                    interarrival,
                    rng: root.derive((c.class.index() as u64) << 32 | node as u64),
                });
            }
        }
        WorkloadGenerator {
            spec,
            zipf,
            streams,
            next_op: 0,
        }
    }

    /// The workload being generated.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Mutable spec access (the goal schedule rewrites `goal_ms`).
    pub fn spec_mut(&mut self) -> &mut WorkloadSpec {
        &mut self.spec
    }

    /// All `(node, class)` pairs with a positive arrival rate.
    pub fn active_streams(&self) -> Vec<(NodeId, ClassId)> {
        self.streams
            .iter()
            .filter(|s| s.interarrival.is_some())
            .map(|s| (s.node, s.class))
            .collect()
    }

    /// Draws the gap to the next arrival of `class` at `node`, honouring any
    /// rate shift in force at `now` (§1's evolving workloads). A stream whose
    /// current rate is zero sleeps for one long beat and re-checks.
    pub fn next_gap(&mut self, node: NodeId, class: ClassId, now: SimTime) -> SimDuration {
        let spec = &self.spec.classes[class.index()];
        let rate = if spec.rate_shifts.is_empty() {
            spec.arrival_per_ms[node.index()]
        } else {
            spec.rates_at(now)[node.index()]
        };
        let s = self.stream_mut(node, class);
        if rate <= 0.0 {
            debug_assert!(s.interarrival.is_some(), "stream never active");
            return SimDuration::from_secs(10);
        }
        let dist = Exponential::from_mean(SimDuration::from_millis_f64(1.0 / rate));
        dist.sample(&mut s.rng)
    }

    /// Builds the operation arriving at `now` for `class` at `node`:
    /// `pages_per_op` *distinct* Zipf-distributed pages from the class's set.
    pub fn make_op(&mut self, node: NodeId, class: ClassId, now: SimTime) -> Operation {
        self.next_op += 1;
        let id = OpId(self.next_op);
        let n_pages = self.spec.class(class).pages_per_op;
        let zipf = &self.zipf[class.index()];
        let class_pages = &self.spec.classes[class.index()].pages;
        let mut pages = Vec::with_capacity(n_pages);
        let s = self
            .streams
            .iter_mut()
            .find(|s| s.node == node && s.class == class)
            .expect("unknown stream");
        // Rejection-sample distinct pages; fall back to sequential ranks if
        // the set is smaller than the op (degenerate configs in tests).
        let mut guard = 0;
        while pages.len() < n_pages {
            let rank = if guard < 20 * n_pages {
                zipf.sample(&mut s.rng)
            } else {
                (pages.len() + guard) % class_pages.len()
            };
            guard += 1;
            let page = class_pages[rank];
            if !pages.contains(&page) {
                pages.push(page);
            }
            if pages.len() == class_pages.len() {
                break;
            }
        }
        Operation {
            id,
            class,
            origin: node,
            pages,
            arrival: now,
        }
    }

    fn stream_mut(&mut self, node: NodeId, class: ClassId) -> &mut Stream {
        self.streams
            .iter_mut()
            .find(|s| s.node == node && s.class == class)
            .expect("unknown stream")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::WorkloadSpec;
    use dmm_buffer::NO_GOAL;

    fn generator(theta: f64, seed: u64) -> WorkloadGenerator {
        let spec = WorkloadSpec::base_two_class(3, 2000, theta, 0.02, 5.0);
        WorkloadGenerator::new(spec, 3, seed)
    }

    #[test]
    fn streams_cover_all_pairs() {
        let g = generator(0.0, 1);
        let s = g.active_streams();
        assert_eq!(s.len(), 6); // 2 classes × 3 nodes
    }

    #[test]
    fn gaps_follow_the_rate() {
        let mut g = generator(0.0, 2);
        let n = 20_000;
        let sum: f64 = (0..n)
            .map(|_| {
                g.next_gap(NodeId(0), ClassId(1), SimTime::ZERO)
                    .as_millis_f64()
            })
            .sum();
        let mean = sum / n as f64;
        assert!((mean - 50.0).abs() < 2.0, "mean gap {mean} ms vs 1/0.02");
    }

    #[test]
    fn ops_have_distinct_pages_from_class_set() {
        let mut g = generator(1.0, 3);
        for i in 0..200 {
            let op = g.make_op(NodeId(1), ClassId(1), SimTime::from_nanos(i));
            assert_eq!(op.pages.len(), 4);
            let set: std::collections::HashSet<_> = op.pages.iter().collect();
            assert_eq!(set.len(), 4, "duplicate pages in op");
            for p in &op.pages {
                assert!(p.0 < 1000, "goal class pages are the first half");
            }
        }
    }

    #[test]
    fn no_goal_ops_use_second_half() {
        let mut g = generator(0.0, 4);
        let op = g.make_op(NodeId(0), NO_GOAL, SimTime::ZERO);
        for p in &op.pages {
            assert!(p.0 >= 1000);
        }
    }

    #[test]
    fn same_seed_same_trace() {
        let mut a = generator(0.5, 9);
        let mut b = generator(0.5, 9);
        for _ in 0..50 {
            assert_eq!(
                a.next_gap(NodeId(2), NO_GOAL, SimTime::ZERO),
                b.next_gap(NodeId(2), NO_GOAL, SimTime::ZERO)
            );
            let oa = a.make_op(NodeId(2), ClassId(1), SimTime::ZERO);
            let ob = b.make_op(NodeId(2), ClassId(1), SimTime::ZERO);
            assert_eq!(oa.pages, ob.pages);
        }
    }

    #[test]
    fn skew_concentrates_accesses() {
        let mut skewed = generator(1.0, 5);
        let mut counts = vec![0u32; 1000];
        for _ in 0..2000 {
            let op = skewed.make_op(NodeId(0), ClassId(1), SimTime::ZERO);
            for p in op.pages {
                counts[p.index()] += 1;
            }
        }
        let head: u32 = counts[..50].iter().sum();
        let tail: u32 = counts[500..550].iter().sum();
        assert!(head > tail * 5, "head {head} vs tail {tail}");
    }

    #[test]
    fn rate_shift_changes_gap_scale() {
        use crate::class::RateShift;
        let mut spec = WorkloadSpec::base_two_class(1, 100, 0.0, 0.01, 5.0);
        spec.classes[1].rate_shifts = vec![RateShift {
            at: SimTime::from_nanos(1_000_000_000),
            arrival_per_ms: vec![0.1],
        }];
        let mut g = WorkloadGenerator::new(spec, 1, 3);
        let n = 3000;
        let mean = |g: &mut WorkloadGenerator, now: SimTime| {
            (0..n)
                .map(|_| g.next_gap(NodeId(0), ClassId(1), now).as_millis_f64())
                .sum::<f64>()
                / n as f64
        };
        let before = mean(&mut g, SimTime::ZERO);
        let after = mean(&mut g, SimTime::from_nanos(2_000_000_000));
        assert!(
            (before - 100.0).abs() < 10.0,
            "base rate 0.01 → 100 ms: {before}"
        );
        assert!(
            (after - 10.0).abs() < 1.0,
            "shifted rate 0.1 → 10 ms: {after}"
        );
    }

    #[test]
    fn zero_rate_epoch_sleeps() {
        use crate::class::RateShift;
        let mut spec = WorkloadSpec::base_two_class(1, 100, 0.0, 0.01, 5.0);
        spec.classes[1].rate_shifts = vec![RateShift {
            at: SimTime::from_nanos(1),
            arrival_per_ms: vec![0.0],
        }];
        let mut g = WorkloadGenerator::new(spec, 1, 4);
        let gap = g.next_gap(NodeId(0), ClassId(1), SimTime::from_nanos(10));
        assert_eq!(gap, SimDuration::from_secs(10));
    }

    #[test]
    fn tiny_page_set_terminates() {
        let mut spec = WorkloadSpec::base_two_class(1, 100, 0.0, 0.01, 5.0);
        spec.classes[1].pages.truncate(2);
        spec.classes[1].pages_per_op = 4;
        let mut g = WorkloadGenerator::new(spec, 1, 7);
        let op = g.make_op(NodeId(0), ClassId(1), SimTime::ZERO);
        assert_eq!(op.pages.len(), 2, "cannot exceed the page set");
    }
}
