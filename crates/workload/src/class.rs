//! Class specifications.

use dmm_buffer::{ClassId, PageId, NO_GOAL};
use dmm_sim::SimTime;

/// A step change of a class's arrival rates at a given instant — the
/// "evolving workload" of the paper's §1 ("it is dynamic in that it copes
/// with evolving workload characteristics").
#[derive(Debug, Clone, PartialEq)]
pub struct RateShift {
    /// When the new rates take effect.
    pub at: SimTime,
    /// New per-node arrival rates (ops/ms).
    pub arrival_per_ms: Vec<f64>,
}

/// Which response-time statistic a class's goal constrains.
///
/// The paper's controller targets the *mean* per-interval response time;
/// production SLOs are usually tail targets. A quantile goal drives the
/// whole measure → check → optimize loop off the per-interval per-class
/// quantile extracted from integer-exact response-time histograms instead
/// of the windowed mean — everything downstream (tolerance, measure store,
/// hyperplane fit) consumes the chosen statistic transparently.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum GoalMetric {
    /// Goal on the interval mean response time (the paper's semantics).
    #[default]
    Mean,
    /// Goal on the interval `q`-quantile of response time, `0 < q < 1`
    /// (e.g. `q = 0.95` for a p95 goal).
    Quantile {
        /// The quantile, exclusive in (0, 1).
        q: f64,
    },
}

impl GoalMetric {
    /// True for a quantile goal.
    pub fn is_quantile(&self) -> bool {
        matches!(self, GoalMetric::Quantile { .. })
    }

    /// The quantile `q` for quantile goals, `None` for mean goals.
    pub fn quantile(&self) -> Option<f64> {
        match self {
            GoalMetric::Mean => None,
            GoalMetric::Quantile { q } => Some(*q),
        }
    }

    /// Compact label: `"mean"`, or `"p95"` / `"p99.9"` for quantiles
    /// (per-mille precision, trailing zero dropped).
    pub fn label(&self) -> String {
        match self {
            GoalMetric::Mean => "mean".to_string(),
            GoalMetric::Quantile { q } => {
                let permille = (q * 1000.0).round() as u64;
                if permille.is_multiple_of(10) {
                    format!("p{}", permille / 10)
                } else {
                    format!("p{}.{}", permille / 10, permille % 10)
                }
            }
        }
    }

    /// Validates the metric (quantile must lie strictly inside (0, 1)).
    pub fn validate(&self) {
        if let GoalMetric::Quantile { q } = self {
            assert!(
                q.is_finite() && *q > 0.0 && *q < 1.0,
                "goal quantile must lie in (0, 1), got {q}"
            );
        }
    }
}

/// One workload class: its goal, complexity, access skew, page set and
/// per-node arrival rates.
#[derive(Debug, Clone)]
pub struct ClassSpec {
    /// Class identity (0 = no-goal).
    pub class: ClassId,
    /// Response time goal in milliseconds (on the statistic selected by
    /// [`ClassSpec::goal_metric`]); `None` for the no-goal class.
    pub goal_ms: Option<f64>,
    /// Which response-time statistic the goal constrains.
    pub goal_metric: GoalMetric,
    /// Page accesses per operation (§7.2 base experiment: 4).
    pub pages_per_op: usize,
    /// Zipf skew θ over this class's page set (0 = uniform).
    pub zipf_theta: f64,
    /// The class's page set, ranked hottest first (index = Zipf rank).
    pub pages: Vec<PageId>,
    /// Arrival rate λ_{k,i} in operations per millisecond, per node.
    pub arrival_per_ms: Vec<f64>,
    /// Scheduled step changes of the arrival rates, in time order.
    pub rate_shifts: Vec<RateShift>,
}

impl ClassSpec {
    /// The arrival rates in force at `now` (the base rates until the first
    /// shift, then the most recent shift's rates).
    pub fn rates_at(&self, now: SimTime) -> &[f64] {
        self.rate_shifts
            .iter()
            .rev()
            .find(|s| s.at <= now)
            .map_or(&self.arrival_per_ms, |s| &s.arrival_per_ms)
    }
}

impl ClassSpec {
    /// True for a goal class.
    pub fn is_goal_class(&self) -> bool {
        self.goal_ms.is_some()
    }

    /// Total arrival rate over all nodes (ops/ms).
    pub fn total_arrival_per_ms(&self) -> f64 {
        self.arrival_per_ms.iter().sum()
    }

    /// Validates internal consistency.
    pub fn validate(&self, nodes: usize, db_pages: u32) {
        assert!(!self.pages.is_empty(), "{}: empty page set", self.class);
        assert!(self.pages_per_op >= 1);
        assert!(self.zipf_theta >= 0.0);
        assert_eq!(
            self.arrival_per_ms.len(),
            nodes,
            "{}: arrival rates must cover every node",
            self.class
        );
        assert!(
            self.arrival_per_ms.iter().all(|&r| r >= 0.0),
            "negative arrival rate"
        );
        let mut prev = None;
        for shift in &self.rate_shifts {
            assert_eq!(shift.arrival_per_ms.len(), nodes, "shift rate arity");
            assert!(shift.arrival_per_ms.iter().all(|&r| r >= 0.0));
            if let Some(p) = prev {
                assert!(shift.at > p, "rate shifts must be in time order");
            }
            prev = Some(shift.at);
        }
        for p in &self.pages {
            assert!(p.0 < db_pages, "{}: page {p} outside database", self.class);
        }
        if self.class == NO_GOAL {
            assert!(self.goal_ms.is_none(), "no-goal class cannot carry a goal");
            assert!(
                !self.goal_metric.is_quantile(),
                "no-goal class cannot carry a quantile goal metric"
            );
        } else {
            assert!(self.goal_ms.is_some(), "goal class needs a goal");
        }
        if let Some(g) = self.goal_ms {
            assert!(g > 0.0);
        }
        self.goal_metric.validate();
    }
}

/// The complete workload: one spec per class, class ids contiguous from 0.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Class specs; index = class id.
    pub classes: Vec<ClassSpec>,
}

impl WorkloadSpec {
    /// Validates the whole workload against a cluster shape.
    pub fn validate(&self, nodes: usize, db_pages: u32) {
        assert!(!self.classes.is_empty());
        for (i, c) in self.classes.iter().enumerate() {
            assert_eq!(c.class.index(), i, "class ids must be contiguous");
            c.validate(nodes, db_pages);
        }
    }

    /// Number of goal classes.
    pub fn goal_classes(&self) -> usize {
        self.classes.iter().filter(|c| c.is_goal_class()).count()
    }

    /// Spec of `class`.
    pub fn class(&self, class: ClassId) -> &ClassSpec {
        &self.classes[class.index()]
    }

    /// Mutable spec of `class` (goal schedule updates).
    pub fn class_mut(&mut self, class: ClassId) -> &mut ClassSpec {
        &mut self.classes[class.index()]
    }

    /// The paper's §7.2 base workload: one goal class and the no-goal class,
    /// disjoint page sets splitting the database evenly, 4 pages per
    /// operation, skew `theta`. The no-goal class arrives 3× as often as the
    /// goal class (background bulk work vs. the protected class), which
    /// keeps the paper's premise — "dedicated buffer areas speed up the
    /// operations of the corresponding classes" — true over the whole
    /// dedication range: without a dedicated pool the goal class only gets
    /// its (small) fair share of the shared LRU frames.
    pub fn base_two_class(
        nodes: usize,
        db_pages: u32,
        theta: f64,
        goal_arrival_per_ms_per_node: f64,
        initial_goal_ms: f64,
    ) -> WorkloadSpec {
        Self::two_class_with_rates(
            nodes,
            db_pages,
            theta,
            goal_arrival_per_ms_per_node,
            3.0 * goal_arrival_per_ms_per_node,
            initial_goal_ms,
        )
    }

    /// [`Self::base_two_class`] with explicit per-class arrival rates.
    pub fn two_class_with_rates(
        nodes: usize,
        db_pages: u32,
        theta: f64,
        goal_arrival_per_ms_per_node: f64,
        nogoal_arrival_per_ms_per_node: f64,
        initial_goal_ms: f64,
    ) -> WorkloadSpec {
        let half = db_pages / 2;
        let goal_pages: Vec<PageId> = (0..half).map(PageId).collect();
        let nogoal_pages: Vec<PageId> = (half..db_pages).map(PageId).collect();
        WorkloadSpec {
            classes: vec![
                ClassSpec {
                    class: NO_GOAL,
                    goal_ms: None,
                    goal_metric: GoalMetric::Mean,
                    pages_per_op: 4,
                    zipf_theta: theta,
                    pages: nogoal_pages,
                    arrival_per_ms: vec![nogoal_arrival_per_ms_per_node; nodes],
                    rate_shifts: Vec::new(),
                },
                ClassSpec {
                    class: ClassId(1),
                    goal_ms: Some(initial_goal_ms),
                    goal_metric: GoalMetric::Mean,
                    pages_per_op: 4,
                    zipf_theta: theta,
                    pages: goal_pages,
                    arrival_per_ms: vec![goal_arrival_per_ms_per_node; nodes],
                    rate_shifts: Vec::new(),
                },
            ],
        }
    }

    /// The SLO-vs-batch flagship workload: [`Self::two_class_with_rates`]
    /// with the goal class's metric switched to `Quantile { q }` — one
    /// latency-critical class holding a tail goal (e.g. p95 ≤ `goal_ms`)
    /// co-scheduled against the throughput-oriented no-goal batch class.
    #[allow(clippy::too_many_arguments)]
    pub fn slo_vs_batch(
        nodes: usize,
        db_pages: u32,
        theta: f64,
        slo_arrival_per_ms_per_node: f64,
        batch_arrival_per_ms_per_node: f64,
        goal_ms: f64,
        q: f64,
    ) -> WorkloadSpec {
        let mut spec = Self::two_class_with_rates(
            nodes,
            db_pages,
            theta,
            slo_arrival_per_ms_per_node,
            batch_arrival_per_ms_per_node,
            goal_ms,
        );
        spec.classes[1].goal_metric = GoalMetric::Quantile { q };
        spec
    }

    /// The §7.4 workload: two goal classes k1 (tighter goal) and k2 plus the
    /// no-goal class. `sharing` ∈ \[0, 1\] is the fraction of each goal class's
    /// page set shared with the other; shared pages are the hottest ranks of
    /// *both* classes (see module docs).
    #[allow(clippy::too_many_arguments)]
    pub fn two_goal_classes(
        nodes: usize,
        db_pages: u32,
        theta: f64,
        arrival_per_ms_per_node: f64,
        goal1_ms: f64,
        goal2_ms: f64,
        sharing: f64,
    ) -> WorkloadSpec {
        assert!((0.0..=1.0).contains(&sharing));
        assert!(goal1_ms <= goal2_ms, "k1 is the tighter goal by convention");
        // Three equal thirds: k1, k2, no-goal. The shared block is carved
        // from the front (hottest ranks) of k1's third and replaces the
        // front of k2's third.
        let third = db_pages / 3;
        let shared = (sharing * third as f64).round() as u32;
        let k1_pages: Vec<PageId> = (0..third).map(PageId).collect();
        let mut k2_pages: Vec<PageId> = (0..shared).map(PageId).collect();
        k2_pages.extend((third + shared..2 * third).map(PageId));
        k2_pages.extend((third..third + shared).map(PageId));
        // k2 keeps exactly `third` pages: shared head + its private tail.
        k2_pages.truncate(third as usize);
        let nogoal_pages: Vec<PageId> = (2 * third..db_pages).map(PageId).collect();
        WorkloadSpec {
            classes: vec![
                ClassSpec {
                    class: NO_GOAL,
                    goal_ms: None,
                    goal_metric: GoalMetric::Mean,
                    pages_per_op: 4,
                    zipf_theta: theta,
                    pages: nogoal_pages,
                    arrival_per_ms: vec![arrival_per_ms_per_node; nodes],
                    rate_shifts: Vec::new(),
                },
                ClassSpec {
                    class: ClassId(1),
                    goal_ms: Some(goal1_ms),
                    goal_metric: GoalMetric::Mean,
                    pages_per_op: 4,
                    zipf_theta: theta,
                    pages: k1_pages,
                    arrival_per_ms: vec![arrival_per_ms_per_node; nodes],
                    rate_shifts: Vec::new(),
                },
                ClassSpec {
                    class: ClassId(2),
                    goal_ms: Some(goal2_ms),
                    goal_metric: GoalMetric::Mean,
                    pages_per_op: 4,
                    zipf_theta: theta,
                    pages: k2_pages,
                    arrival_per_ms: vec![arrival_per_ms_per_node; nodes],
                    rate_shifts: Vec::new(),
                },
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_workload_is_valid_and_disjoint() {
        let w = WorkloadSpec::base_two_class(3, 2000, 0.5, 0.02, 5.0);
        w.validate(3, 2000);
        assert_eq!(w.goal_classes(), 1);
        let goal: std::collections::HashSet<_> = w.class(ClassId(1)).pages.iter().collect();
        let nogoal: std::collections::HashSet<_> = w.class(NO_GOAL).pages.iter().collect();
        assert!(goal.is_disjoint(&nogoal));
        assert_eq!(goal.len() + nogoal.len(), 2000);
    }

    #[test]
    fn sharing_zero_is_disjoint() {
        let w = WorkloadSpec::two_goal_classes(3, 2100, 0.0, 0.02, 3.0, 6.0, 0.0);
        w.validate(3, 2100);
        let k1: std::collections::HashSet<_> = w.class(ClassId(1)).pages.iter().collect();
        let k2: std::collections::HashSet<_> = w.class(ClassId(2)).pages.iter().collect();
        assert!(k1.is_disjoint(&k2));
    }

    #[test]
    fn sharing_half_overlaps_hot_heads() {
        let w = WorkloadSpec::two_goal_classes(3, 2100, 0.0, 0.02, 3.0, 6.0, 0.5);
        w.validate(3, 2100);
        let k1 = &w.class(ClassId(1)).pages;
        let k2 = &w.class(ClassId(2)).pages;
        let shared = 350; // 0.5 · 700
                          // The first `shared` ranks of k2 are k1's hottest ranks.
        assert_eq!(&k2[..shared], &k1[..shared]);
        // Sets overlap by exactly `shared`.
        let s1: std::collections::HashSet<_> = k1.iter().collect();
        let s2: std::collections::HashSet<_> = k2.iter().collect();
        assert_eq!(s1.intersection(&s2).count(), shared);
        assert_eq!(k2.len(), 700);
    }

    #[test]
    fn sharing_one_is_identical_sets() {
        let w = WorkloadSpec::two_goal_classes(3, 2100, 0.0, 0.02, 3.0, 6.0, 1.0);
        let k1: std::collections::HashSet<_> = w.class(ClassId(1)).pages.iter().collect();
        let k2: std::collections::HashSet<_> = w.class(ClassId(2)).pages.iter().collect();
        assert_eq!(k1, k2);
    }

    #[test]
    fn goal_metric_labels() {
        assert_eq!(GoalMetric::Mean.label(), "mean");
        assert_eq!(GoalMetric::Quantile { q: 0.95 }.label(), "p95");
        assert_eq!(GoalMetric::Quantile { q: 0.999 }.label(), "p99.9");
        assert_eq!(GoalMetric::Quantile { q: 0.5 }.label(), "p50");
        assert!(GoalMetric::Quantile { q: 0.95 }.is_quantile());
        assert_eq!(GoalMetric::Quantile { q: 0.95 }.quantile(), Some(0.95));
        assert_eq!(GoalMetric::Mean.quantile(), None);
    }

    #[test]
    fn slo_vs_batch_sets_quantile_metric() {
        let w = WorkloadSpec::slo_vs_batch(3, 2000, 0.5, 0.02, 0.06, 12.0, 0.95);
        w.validate(3, 2000);
        assert_eq!(w.classes[1].goal_metric, GoalMetric::Quantile { q: 0.95 });
        assert_eq!(w.classes[0].goal_metric, GoalMetric::Mean);
    }

    #[test]
    #[should_panic(expected = "goal quantile")]
    fn quantile_outside_unit_interval_rejected() {
        let w = WorkloadSpec::slo_vs_batch(2, 100, 0.0, 0.01, 0.03, 5.0, 1.0);
        w.validate(2, 100);
    }

    #[test]
    fn rate_shifts_take_effect_in_order() {
        use dmm_sim::SimTime;
        let mut w = WorkloadSpec::base_two_class(2, 100, 0.0, 0.01, 5.0);
        let c = &mut w.classes[1];
        c.rate_shifts = vec![
            RateShift {
                at: SimTime::from_nanos(10),
                arrival_per_ms: vec![0.02, 0.02],
            },
            RateShift {
                at: SimTime::from_nanos(20),
                arrival_per_ms: vec![0.04, 0.0],
            },
        ];
        w.validate(2, 100);
        let c = w.class(ClassId(1));
        assert_eq!(c.rates_at(SimTime::from_nanos(5)), &[0.01, 0.01]);
        assert_eq!(c.rates_at(SimTime::from_nanos(10)), &[0.02, 0.02]);
        assert_eq!(c.rates_at(SimTime::from_nanos(25)), &[0.04, 0.0]);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_shifts_rejected() {
        use dmm_sim::SimTime;
        let mut w = WorkloadSpec::base_two_class(2, 100, 0.0, 0.01, 5.0);
        w.classes[1].rate_shifts = vec![
            RateShift {
                at: SimTime::from_nanos(20),
                arrival_per_ms: vec![0.02, 0.02],
            },
            RateShift {
                at: SimTime::from_nanos(10),
                arrival_per_ms: vec![0.04, 0.04],
            },
        ];
        w.validate(2, 100);
    }

    #[test]
    #[should_panic(expected = "outside database")]
    fn validation_catches_bad_pages() {
        let mut w = WorkloadSpec::base_two_class(2, 100, 0.0, 0.01, 5.0);
        w.classes[1].pages.push(PageId(5000));
        w.validate(2, 100);
    }
}
